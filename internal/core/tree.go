package core

import (
	"cmp"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/schedpoint"
	"github.com/go-citrus/citrus/rcu"
)

// Tree is a Citrus binary search tree. It implements a linearizable
// dictionary with concurrent insert/delete (fine-grained locking) and
// wait-free contains (RCU). Create one with NewTree and access it through
// per-goroutine Handles.
type Tree[K cmp.Ordered, V any] struct {
	flavor  rcu.Flavor
	root    *node[K, V] // −∞ sentinel; its right child is the +∞ sentinel
	recycle *nodePool[K, V]

	// tracer is the attached flight recorder, nil while tracing is
	// disabled (see trace.go). Every operation loads it once.
	tracer atomic.Pointer[citrustrace.Recorder]

	// Handle registry for Stats: live handles' counter stripes plus the
	// folded totals of closed ones (see stats.go).
	hmu          sync.Mutex
	handles      map[*Handle[K, V]]struct{}
	closedTotals opTotals

	// Torture mode (nil in production): reclamation-oracle checks and
	// node poisoning for cmd/citrustorture (see torture.go).
	torture        *tortureState[K, V]
	poisonSentinel *node[K, V]
}

// NewTree returns an empty tree whose searches and grace periods use the
// given RCU flavor. The flavor is shared: every Handle registers with it,
// and delete's synchronize_rcu waits on its readers.
func NewTree[K cmp.Ordered, V any](flavor rcu.Flavor) *Tree[K, V] {
	root := &node[K, V]{kind: kindNegInf}
	infinity := &node[K, V]{kind: kindPosInf}
	root.child[right].Store(infinity)
	return &Tree[K, V]{flavor: flavor, root: root}
}

// A Handle gives one goroutine access to the tree. Handles must not be
// used concurrently; each worker goroutine should create its own with
// NewHandle and Close it when done.
type Handle[K cmp.Ordered, V any] struct {
	t      *Tree[K, V]
	r      rcu.Reader
	closed atomic.Bool // CAS-guarded so Close folds/unregisters exactly once
	ops    opCounters  // owner-written stripe of the tree's Stats

	// Tracing state, owner-written like ops: the handle's event ring
	// under the recorder it was created for, and a reusable per-op
	// trace context so traced operations allocate nothing (trace.go).
	ring    *citrustrace.Ring
	ringRec *citrustrace.Recorder
	tc      opTrace
}

// NewHandle registers a new per-goroutine handle.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] {
	h := &Handle[K, V]{t: t, r: t.flavor.Register()}
	t.addHandle(h)
	return h
}

// Close unregisters the handle from the tree's RCU flavor and folds its
// operation counters into the tree's totals. Close is idempotent — even
// against a concurrent Close from another goroutine (a shutdown reaper
// racing the owner, say): the CAS guarantees exactly one caller folds
// the counters and unregisters, so Tree.Stats never double-counts a
// handle's stripe. Any operation on the handle after Close panics with
// a descriptive message instead of dereferencing nil.
func (h *Handle[K, V]) Close() {
	if !h.closed.CompareAndSwap(false, true) {
		return // already closed
	}
	h.t.dropHandle(h)
	h.r.Unregister()
	h.r = nil
}

// reader returns the handle's RCU reader, turning use-after-Close into
// a descriptive panic rather than a raw nil dereference.
func (h *Handle[K, V]) reader() rcu.Reader {
	r := h.r
	if r == nil {
		panic("citrus: Handle used after Close")
	}
	return r
}

// Tree returns the tree this handle accesses.
func (h *Handle[K, V]) Tree() *Tree[K, V] { return h.t }

// get is the paper's get (lines 1–15): a sequential BST search performed
// inside an RCU read-side critical section. It returns the last link
// followed: prev —dir→ curr, where curr holds key if the key was found and
// is nil otherwise, plus prev's tag for dir, read inside the critical
// section (line 13).
func (h *Handle[K, V]) get(key K) (prev *node[K, V], tag uint64, curr *node[K, V], dir int) {
	r := h.reader()
	r.ReadLock() // line 2
	prev = h.t.root
	curr = prev.child[right].Load() // line 4: root is never nil
	c := curr.compareKey(key)       // line 5: root's right child is never nil
	dir = right
	for curr != nil && c != 0 { // line 7
		// Torture window: a search suspended mid-descent holds pointers
		// into subtrees that concurrent deletes may be dismantling — the
		// interleaving Lemma 2 and Figure 4 are about.
		schedpoint.Hit(schedpoint.CoreReadCS)
		prev = curr
		if c < 0 { // line 9: currentKey > key ? left : right
			dir = left
		} else {
			dir = right
		}
		curr = prev.child[dir].Load()
		if curr != nil {
			c = curr.compareKey(key)
		}
	}
	tag = prev.tag[dir].Load() // line 13: save tag inside the critical section
	r.ReadUnlock()             // line 14
	return prev, tag, curr, dir
}

// Contains reports whether key is in the dictionary and returns its value
// (lines 16–20). It is wait-free when the key space is finite: it takes no
// locks and never retries.
//
// The paper reads the value after get returns; here the search is inlined
// so the value is captured *inside* the read-side critical section. The
// distinction is invisible without node recycling (values are immutable
// while a node is reachable, and the GC keeps unreachable nodes intact),
// but with NewTreeWithRecycling a retired node may be reinitialized as
// soon as the grace period ends, and only reads inside the critical
// section are covered by it.
func (h *Handle[K, V]) Contains(key K) (V, bool) {
	if h.t.tracer.Load() != nil {
		return h.containsTraced(key)
	}
	r := h.reader()
	h.ops.contains.inc()
	r.ReadLock()
	prev := h.t.root
	curr := prev.child[right].Load()
	c := curr.compareKey(key)
	dir := right
	for curr != nil && c != 0 {
		schedpoint.Hit(schedpoint.CoreReadCS) // torture: suspend mid-descent
		prev = curr
		if c < 0 {
			dir = left
		} else {
			dir = right
		}
		curr = prev.child[dir].Load()
		if curr != nil {
			c = curr.compareKey(key)
		}
	}
	if curr == nil { // the key was not found (line 18)
		r.ReadUnlock()
		var zero V
		return zero, false
	}
	v := curr.value // line 20, inside the critical section
	r.ReadUnlock()
	return v, true
}

// Insert adds (key, value) to the dictionary (lines 21–32). It returns
// false if the key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool {
	tc := h.traceStart() // nil (one predictable branch) unless tracing
	for {                // line 22
		prev, tag, curr, dir := h.get(key)
		if curr != nil { // the key was found (line 24)
			h.ops.insertExisting.inc()
			tc.end(citrustrace.EvInsert, 0)
			return false
		}
		// Torture window: (prev, tag) go stale here — the window tag
		// validation (Lemma 3 / Figure 5) exists for.
		schedpoint.Hit(schedpoint.CoreSearchToLock)
		tc.lock(&prev.mu, citrustrace.SiteInsertParent) // line 26
		if validate(prev, tag, nil, dir) {
			n := h.t.newNodeReusing(key, value) // line 28: create a new leaf node
			// Torture window: validated but not yet linked, stretching
			// the lock hold every concurrent conflicting update must
			// fail validation against.
			schedpoint.Hit(schedpoint.CoreValidateToLink)
			prev.child[dir].Store(n) // line 29
			prev.mu.Unlock()
			h.ops.inserts.inc()
			tc.end(citrustrace.EvInsert, 1)
			return true
		}
		prev.mu.Unlock() // line 32: validation failed, release and retry
		h.ops.insertRetries.inc()
		tc.validateFail(citrustrace.SiteValidateInsert)
	}
}

// Delete removes key from the dictionary (lines 42–84). It returns false
// if the key is not present.
func (h *Handle[K, V]) Delete(key K) bool {
	ok, _ := h.DeleteCtx(context.Background(), key)
	return ok
}

// DeleteCtx removes key from the dictionary like Delete, but bounds the
// caller's wait with ctx. The only unbounded wait in a delete is the
// grace period of a two-child delete (the paper's line 74): when ctx is
// done before that grace period completes, DeleteCtx returns
// (true, err) — the delete has already taken effect (the successor copy
// is published and the target unlinked; that is its linearization
// point) — with err matching both rcu.ErrGracePeriodTimeout and
// ctx.Err() under errors.Is. The remaining cleanup (unlinking the old
// successor and releasing its locks) completes on a background
// goroutine once the grace period truly elapses; keys other than the
// old successor's position are never blocked by it, and a concurrent
// delete of a nearby key simply fails validation and retries until the
// cleanup lands.
//
// A ctx that is already done, or that expires between retries of the
// optimistic loop, yields (false, ctx.Err()) with the tree unchanged by
// this call. A ctx without deadline or cancellation degrades to Delete.
func (h *Handle[K, V]) DeleteCtx(ctx context.Context, key K) (bool, error) {
	cancellable := ctx != nil && ctx.Done() != nil
	tc := h.traceStart() // nil (one predictable branch) unless tracing
	for {                // line 43
		if cancellable {
			if err := ctx.Err(); err != nil {
				tc.end(citrustrace.EvDelete, 0)
				return false, err
			}
		}
		prev, _, curr, dir := h.get(key)
		if curr == nil { // the key was not found (line 45)
			h.ops.deleteMisses.inc()
			tc.end(citrustrace.EvDelete, 0)
			return false, nil
		}
		// Torture window: (prev, curr) go stale here; validation (line
		// 49) must catch every interleaving this admits.
		schedpoint.Hit(schedpoint.CoreSearchToLock)
		tc.lock(&prev.mu, citrustrace.SiteDeleteParent) // line 47
		tc.lock(&curr.mu, citrustrace.SiteDeleteTarget) // line 48
		if !validate(prev, 0, curr, dir) {              // line 49
			curr.mu.Unlock()
			prev.mu.Unlock()
			h.ops.deleteRetries.inc()
			tc.validateFail(citrustrace.SiteValidateDelete)
			continue // line 84: validation failed, release locks and retry
		}

		currLeft := curr.child[left].Load()
		currRight := curr.child[right].Load()
		if currLeft == nil || currRight == nil {
			// curr has a single child (lines 50–56).
			curr.marked = true // line 51
			// Torture window: marked but still linked — the
			// marked-before-removed discipline of Lemma 1.
			schedpoint.Hit(schedpoint.CoreMarkToGrace)
			repl := currLeft // line 52: notNoneChild
			if repl == nil {
				repl = currRight
			}
			prev.child[dir].Store(repl) // line 53
			incrementTag(prev, dir)     // line 54
			curr.mu.Unlock()
			prev.mu.Unlock() // line 55: release all locks
			h.t.retire(curr) // reclamation extension: pool after a grace period
			h.ops.deletes.inc()
			tc.retired(1)
			tc.end(citrustrace.EvDelete, 1)
			return true, nil
		}

		// curr has two children (lines 57–83): replace it with a copy of
		// its successor, then retire the original successor after a grace
		// period.
		prevSucc := curr  // line 58: searching for the successor
		succ := currRight // line 59
		next := succ.child[left].Load()
		for next != nil { // lines 61–64; no read-side critical section
			prevSucc = succ // needed: traversed keys don't steer the walk
			succ = next
			next = next.child[left].Load()
		}
		succDir := right // line 65
		if curr != prevSucc {
			succDir = left
			tc.lock(&prevSucc.mu, citrustrace.SiteDeleteSuccParent) // line 67: do not lock twice
		}
		tc.lock(&succ.mu, citrustrace.SiteDeleteSucc) // line 68

		if validate(prevSucc, 0, succ, succDir) &&
			validate(succ, succ.tag[left].Load(), nil, left) { // line 69
			// line 70: new node with succ's key/value and curr's children.
			n := h.t.newNodeReusing(succ.key, succ.value)
			n.child[left].Store(currLeft)
			n.child[right].Store(currRight)
			n.mu.Lock()              // line 71
			curr.marked = true       // line 72
			prev.child[dir].Store(n) // line 73
			// Torture window: the copy is published and curr is marked,
			// but the grace period of line 74 has not begun — searches
			// suspended at the old successor position are still walking.
			schedpoint.Hit(schedpoint.CoreMarkToGrace)
			var w0 time.Time
			if tc != nil {
				w0 = time.Now()
			}
			if cancellable { // line 74: wait for readers, bounded by ctx
				done := rcu.BeginSynchronize(h.t.flavor)
				select {
				case <-done:
				case <-ctx.Done():
					// The delete has linearized (the copy is published,
					// curr unlinked); only the old successor's unlink and
					// the lock releases remain, and they must not run
					// before the grace period ends. Hand them to a
					// background goroutine and release the caller with
					// the typed timeout. All owner-written accounting and
					// tracing happens here, on the owning goroutine.
					h.ops.deletes.inc()
					h.ops.twoChildDeletes.inc()
					h.ops.deleteTimeouts.inc()
					tc.syncWait(w0)
					tc.retired(2)
					tc.end(citrustrace.EvDelete, 2)
					t := h.t
					go func() {
						<-done
						t.completeTwoChildDelete(prev, curr, prevSucc, succ, n)
					}()
					return true, rcu.GracePeriodTimeout(ctx.Err())
				}
			} else {
				h.t.flavor.Synchronize() // line 74: wait for readers
			}
			tc.syncWait(w0)
			h.t.completeTwoChildDelete(prev, curr, prevSucc, succ, n) // lines 75–82
			h.ops.deletes.inc()
			h.ops.twoChildDeletes.inc() // one inline grace period (line 74)
			tc.retired(2)
			tc.end(citrustrace.EvDelete, 2)
			return true, nil // line 83
		}

		// line 84: validation failed, release locks and retry.
		succ.mu.Unlock()
		if curr != prevSucc {
			prevSucc.mu.Unlock()
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		h.ops.deleteRetries.inc()
		tc.validateFail(citrustrace.SiteValidateDeleteSucc)
	}
}

// completeTwoChildDelete finishes a two-child delete after its grace
// period has elapsed (the paper's lines 75–82): remove the old
// successor, publish the tag increment, release all locks, and retire
// the two unlinked nodes. Factored out so a DeleteCtx whose caller
// abandoned the grace-period wait can finish on a background goroutine
// (Go mutexes may be unlocked by a goroutine other than the locker).
func (t *Tree[K, V]) completeTwoChildDelete(prev, curr, prevSucc, succ, n *node[K, V]) {
	succ.marked = true // line 75: remove the old successor
	succRight := succ.child[right].Load()
	if prevSucc == curr { // line 76: succ is the right child of curr
		n.child[right].Store(succRight) // line 77
		incrementTag(n, right)          // line 78
	} else {
		prevSucc.child[left].Store(succRight) // line 80
		incrementTag(prevSucc, left)          // line 81
	}
	// line 82: release all locks.
	n.mu.Unlock()
	succ.mu.Unlock()
	if curr != prevSucc {
		prevSucc.mu.Unlock()
	}
	curr.mu.Unlock()
	prev.mu.Unlock()
	t.retire(curr) // reclamation extension
	t.retire(succ)
}
