package core

import (
	"strings"
	"testing"

	"github.com/go-citrus/citrus/rcu"
)

func TestDump(t *testing.T) {
	tr := NewTree[int, string](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(2, "two")
	h.Insert(1, "one")
	h.Insert(3, "three")

	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	for _, want := range []string{"-inf (root)", "+inf", "1=one", "2=two", "3=three"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
	// Sideways layout: the right subtree (3) prints above the root key
	// (2), which prints above the left subtree (1).
	if strings.Index(out, "3=three") > strings.Index(out, "2=two") ||
		strings.Index(out, "2=two") > strings.Index(out, "1=one") {
		t.Fatalf("Dump order wrong:\n%s", out)
	}
}

func TestWriteDOT(t *testing.T) {
	tr := NewTree[int, int](rcu.NewDomain())
	h := tr.NewHandle()
	defer h.Close()
	h.Insert(10, 100)
	h.Insert(5, 50)
	h.Delete(5) // leaves a bumped tag on 10's left slot

	var b strings.Builder
	tr.WriteDOT(&b)
	out := b.String()
	for _, want := range []string{
		"digraph citrus {",
		`label="-inf"`,
		`label="+inf"`,
		`label="10\n100"`,
		`label="tag=1"`, // the ABA evidence is surfaced
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteDOT missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "->") {
		t.Fatalf("WriteDOT has no edges:\n%s", out)
	}
}
