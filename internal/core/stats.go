package core

import (
	"sync/atomic"

	"github.com/go-citrus/citrus/rcu"
)

// Operation statistics.
//
// Counters are striped per Handle and written only by the handle's
// owning goroutine, so recording is an uncontended plain load + plain
// store pair — no read-modify-write, no shared cache line bouncing
// between workers. This matters most for Contains, whose entire point
// (the paper's §3) is a read side that scales linearly: a single shared
// atomic counter would serialize exactly the path Citrus keeps
// wait-free. Tree.Stats aggregates the live handles' counters plus the
// folded totals of closed handles under a registry mutex.

// ownerCounter is an atomically readable counter whose increments come
// from a single owner goroutine: inc is a plain atomic load + store
// (two cheap instructions, like the RCU reader state word), safe
// because no one else ever writes.
type ownerCounter struct{ v atomic.Int64 }

func (c *ownerCounter) inc()        { c.v.Store(c.v.Load() + 1) }
func (c *ownerCounter) add(n int64) { c.v.Store(c.v.Load() + n) }
func (c *ownerCounter) load() int64 { return c.v.Load() }

// opCounters is one handle's stripe of the tree's operation counters.
type opCounters struct {
	contains        ownerCounter
	inserts         ownerCounter
	insertExisting  ownerCounter
	insertRetries   ownerCounter
	deletes         ownerCounter
	deleteMisses    ownerCounter
	deleteRetries   ownerCounter
	twoChildDeletes ownerCounter
	deleteTimeouts  ownerCounter
	scans           ownerCounter
	scanSections    ownerCounter
	scanPairs       ownerCounter
	scanNodes       ownerCounter
}

// opTotals is a plain (non-atomic) sum of opCounters stripes; the
// tree's registry mutex guards the folded totals of closed handles.
type opTotals struct {
	contains, inserts, insertExisting, insertRetries      int64
	deletes, deleteMisses, deleteRetries, twoChildDeletes int64
	deleteTimeouts                                        int64
	scans, scanSections, scanPairs, scanNodes             int64
}

func (t *opTotals) accumulate(c *opCounters) {
	t.contains += c.contains.load()
	t.inserts += c.inserts.load()
	t.insertExisting += c.insertExisting.load()
	t.insertRetries += c.insertRetries.load()
	t.deletes += c.deletes.load()
	t.deleteMisses += c.deleteMisses.load()
	t.deleteRetries += c.deleteRetries.load()
	t.twoChildDeletes += c.twoChildDeletes.load()
	t.deleteTimeouts += c.deleteTimeouts.load()
	t.scans += c.scans.load()
	t.scanSections += c.scanSections.load()
	t.scanPairs += c.scanPairs.load()
	t.scanNodes += c.scanNodes.load()
}

// Stats is a point-in-time snapshot of a Tree's operation counters. All
// counts are cumulative since the tree was created and monotonically
// non-decreasing across snapshots.
//
// In the paper's terms: InsertRetries and DeleteRetries count failed
// post-lock validations (the optimistic-locking restarts of lines 32
// and 84), and TwoChildDeletes counts successor-relocation deletes —
// each of which executed exactly one inline grace period (the
// synchronize_rcu of line 74), so it equals the tree's contribution to
// the flavor's Synchronizes counter.
type Stats struct {
	Contains        int64 // Contains calls
	Inserts         int64 // Insert calls that added a key
	InsertExisting  int64 // Insert calls that found the key present
	InsertRetries   int64 // insert validation failures (retried)
	Deletes         int64 // Delete calls that removed a key
	DeleteMisses    int64 // Delete calls that found no key
	DeleteRetries   int64 // delete validation failures (retried)
	TwoChildDeletes int64 // deletes that relocated a successor (inline grace periods)
	DeleteTimeouts  int64 // DeleteCtx calls whose grace-period wait hit the deadline

	Scans        int64 // RangeScan/Scan calls (batched variants count once)
	ScanSections int64 // read-side critical sections entered by scans
	ScanPairs    int64 // key/value pairs emitted by scans
	ScanNodes    int64 // tree nodes visited by scans

	NodesRetired int64 // nodes handed to the recycling pool (0 without recycling)
	NodesReused  int64 // pooled nodes reused by inserts (0 without recycling)

	// RCU is the flavor's grace-period accounting, when the flavor
	// keeps any (nil otherwise — e.g. a NoSync-wrapped flavor). For a
	// flavor shared between trees it covers all of them.
	RCU *rcu.Stats
}

// Stats returns a snapshot of the tree's cumulative operation counters,
// recycling effectiveness, and — when the flavor supports it — the
// RCU domain's grace-period statistics. Safe to call at any time from
// any goroutine, concurrently with operations and handle churn.
func (t *Tree[K, V]) Stats() Stats {
	t.hmu.Lock()
	tot := t.closedTotals
	for h := range t.handles {
		tot.accumulate(&h.ops)
	}
	t.hmu.Unlock()

	s := Stats{
		Contains:        tot.contains,
		Inserts:         tot.inserts,
		InsertExisting:  tot.insertExisting,
		InsertRetries:   tot.insertRetries,
		Deletes:         tot.deletes,
		DeleteMisses:    tot.deleteMisses,
		DeleteRetries:   tot.deleteRetries,
		TwoChildDeletes: tot.twoChildDeletes,
		DeleteTimeouts:  tot.deleteTimeouts,
		Scans:           tot.scans,
		ScanSections:    tot.scanSections,
		ScanPairs:       tot.scanPairs,
		ScanNodes:       tot.scanNodes,
	}
	if t.recycle != nil {
		s.NodesRetired = t.recycle.retired.Load()
		s.NodesReused = t.recycle.reused.Load()
	}
	if src, ok := t.flavor.(rcu.StatsSource); ok {
		rs := src.Stats()
		s.RCU = &rs
	}
	return s
}

// addHandle registers a live handle's counter stripe with the tree.
func (t *Tree[K, V]) addHandle(h *Handle[K, V]) {
	t.hmu.Lock()
	if t.handles == nil {
		t.handles = make(map[*Handle[K, V]]struct{})
	}
	t.handles[h] = struct{}{}
	t.hmu.Unlock()
}

// dropHandle folds a closing handle's counters into the closed totals
// and removes it from the registry, so Stats stays monotonic across
// handle lifecycles. The fold happens only while the handle is still
// registered: folding an already-dropped handle would count its stripe
// twice — once live, once folded is the invariant (Close's CAS enforces
// it too; the membership check keeps the fold exactly-once even if a
// future caller reaches dropHandle some other way).
func (t *Tree[K, V]) dropHandle(h *Handle[K, V]) {
	t.hmu.Lock()
	if _, ok := t.handles[h]; ok {
		t.closedTotals.accumulate(&h.ops)
		delete(t.handles, h)
	}
	t.hmu.Unlock()
}
