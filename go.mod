module github.com/go-citrus/citrus

go 1.24
