package citrus_test

import (
	"fmt"
	"sync"
	"testing"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/rcu"
)

func TestPublicAPI(t *testing.T) {
	tree := citrus.New[string, int]()
	h := tree.NewHandle()
	defer h.Close()

	if !h.Insert("b", 2) || !h.Insert("a", 1) || !h.Insert("c", 3) {
		t.Fatal("inserts failed")
	}
	if h.Insert("b", 99) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := h.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = (%d, %v), want (2, true)", v, ok)
	}
	if !h.Contains("a") || h.Contains("zz") {
		t.Fatal("Contains broken")
	}
	if !h.Delete("b") || h.Delete("b") {
		t.Fatal("Delete semantics broken")
	}
	if got := tree.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	want := []string{"a", "c"}
	for i, k := range tree.Keys() {
		if k != want[i] {
			t.Fatalf("Keys() = %v, want %v", tree.Keys(), want)
		}
	}
	var collected []string
	tree.Range(func(k string, v int) bool {
		collected = append(collected, fmt.Sprintf("%s=%d", k, v))
		return true
	})
	if len(collected) != 2 || collected[0] != "a=1" || collected[1] != "c=3" {
		t.Fatalf("Range collected %v", collected)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIWithClassicFlavor(t *testing.T) {
	tree := citrus.NewWithFlavor[int, int](rcu.NewClassicDomain())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			defer h.Close()
			for i := g * 100; i < (g+1)*100; i++ {
				h.Insert(i, i)
			}
			for i := g * 100; i < (g+1)*100; i += 2 {
				h.Delete(i)
			}
		}(g)
	}
	wg.Wait()
	if got := tree.Len(); got != 200 {
		t.Fatalf("Len() = %d, want 200", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedDomainAcrossTrees(t *testing.T) {
	dom := rcu.NewDomain()
	t1 := citrus.NewWithFlavor[int, int](dom)
	t2 := citrus.NewWithFlavor[int, int](dom)
	h1, h2 := t1.NewHandle(), t2.NewHandle()
	defer h1.Close()
	defer h2.Close()
	h1.Insert(1, 1)
	h2.Insert(2, 2)
	if !h1.Contains(1) || h1.Contains(2) || !h2.Contains(2) {
		t.Fatal("trees sharing a domain interfere")
	}
}

func ExampleTree() {
	tree := citrus.New[int, string]()
	h := tree.NewHandle()
	defer h.Close()

	h.Insert(2, "two")
	h.Insert(1, "one")
	h.Insert(3, "three")
	h.Delete(2)

	if v, ok := h.Get(1); ok {
		fmt.Println("1 ->", v)
	}
	fmt.Println("2 present:", h.Contains(2))
	fmt.Println("keys:", tree.Keys())
	// Output:
	// 1 -> one
	// 2 present: false
	// keys: [1 3]
}

func ExampleNewWithRecycling() {
	dom := rcu.NewDomain()
	rec := rcu.NewReclaimer(dom)
	defer rec.Close()

	tree := citrus.NewWithRecycling[int, int](dom, rec)
	h := tree.NewHandle()
	defer h.Close()

	// Churn: deleted nodes are pooled after a grace period and reused.
	for i := 0; i < 1000; i++ {
		h.Insert(i%8, i)
		h.Delete(i % 8)
	}
	rec.Barrier() // all retirements processed
	fmt.Println("len:", tree.Len())
	// Output:
	// len: 0
}

func TestPublicAPIWithEpochFlavor(t *testing.T) {
	tree := citrus.NewWithFlavor[int, int](rcu.NewEpochDomain())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tree.NewHandle()
			defer h.Close()
			for i := g * 100; i < (g+1)*100; i++ {
				h.Insert(i, i)
			}
			for i := g * 100; i < (g+1)*100; i += 2 {
				h.Delete(i)
			}
		}(g)
	}
	wg.Wait()
	if got := tree.Len(); got != 200 {
		t.Fatalf("Len() = %d, want 200", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleRangeScanLimit(t *testing.T) {
	tree := citrus.New[int, int]()
	h := tree.NewHandle()
	defer h.Close()
	for k := 0; k < 100; k++ {
		h.Insert(k, k)
	}
	var got []int
	h.RangeScanLimit(10, 90, 5, func(k, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("RangeScanLimit emitted %d pairs, want 5", len(got))
	}
	for i, k := range got {
		if k != 10+i {
			t.Fatalf("RangeScanLimit[%d] = %d, want %d", i, k, 10+i)
		}
	}
	count := 0
	h.RangeScanLimit(0, 100, 0, func(k, v int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("limit 0 emitted %d pairs", count)
	}
}
