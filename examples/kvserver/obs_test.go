package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/go-citrus/citrus/citrusstat/promtext"
)

// promScrape GETs /metrics.prom off the server's mux and runs the
// payload through the strict text-format parser, failing the test on
// any malformation (interleaved families, non-cumulative buckets,
// +Inf/_count mismatch, ...).
func promScrape(t *testing.T, s *server) promtext.Metrics {
	t.Helper()
	rec := httptest.NewRecorder()
	s.statsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.prom", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.prom: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics.prom: Content-Type %q", ct)
	}
	m, err := promtext.Parse(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("/metrics.prom does not parse: %v\n%s", err, rec.Body.String())
	}
	return m
}

// TestPromMetricsEndpoint drives both faces of the store and checks
// the Prometheus payload end to end at one shard and at eight: the
// payload parses strictly, the request histograms carry (face, op)
// labels with the right counts, and every citrus_* series appears once
// per shard with the per-shard counters summing to the fold.
func TestPromMetricsEndpoint(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := defaultKVConfig()
			cfg.shards = shards
			s := newServer(cfg)
			h := s.store.NewHandle()
			defer h.Close()
			mux := s.statsMux()

			const n = 64
			for k := 0; k < n; k++ {
				if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
					t.Fatalf("SET %d = %q", k, got)
				}
			}
			for k := 0; k < n; k++ {
				s.exec(h, fmt.Sprintf("GET %d", k))
			}
			// A few requests on the HTTP face too.
			for k := 0; k < 4; k++ {
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("GET", "/kv/"+strconv.Itoa(k), nil))
				if rec.Code != http.StatusOK {
					t.Fatalf("GET /kv/%d: status %d", k, rec.Code)
				}
			}

			m := promScrape(t, s)

			if f := m["kvserver_ops_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value < 2*n {
				t.Fatalf("kvserver_ops_total wrong: %+v", f)
			}
			req := m["kvserver_request_seconds"]
			if req == nil || req.Type != "histogram" {
				t.Fatalf("kvserver_request_seconds missing or not a histogram: %+v", req)
			}
			for _, want := range []struct {
				face, op string
				count    float64
			}{{"tcp", "set", n}, {"tcp", "get", n}, {"http", "get", 4}} {
				sm := req.Sample("face", want.face, "op", want.op, "le", "+Inf")
				if sm == nil || sm.Value != want.count {
					t.Fatalf("request histogram {face=%s,op=%s}: +Inf = %+v, want %v",
						want.face, want.op, sm, want.count)
				}
			}

			// Per-shard series: one sample per shard, counters summing to
			// the fold.
			ins := m["citrus_tree_inserts_total"]
			if ins == nil || len(ins.Samples) != shards {
				t.Fatalf("citrus_tree_inserts_total has %d samples, want %d", len(ins.Samples), shards)
			}
			var total float64
			seen := map[string]bool{}
			for _, sm := range ins.Samples {
				shard := sm.Label("shard")
				if shard == "" || seen[shard] {
					t.Fatalf("bad or duplicate shard label %q", shard)
				}
				seen[shard] = true
				total += sm.Value
			}
			if total != n {
				t.Fatalf("per-shard inserts sum to %v, want %d", total, n)
			}
			for _, fam := range []string{
				"citrus_rcu_synchronizes_total", "citrus_rcu_active_syncs",
				"citrus_rcu_oldest_sync_age_seconds", "citrus_reclaim_queue_depth",
				"citrus_reclaim_oldest_age_seconds",
			} {
				f := m[fam]
				if f == nil || len(f.Samples) != shards {
					t.Fatalf("%s: got %+v, want %d shard samples", fam, f, shards)
				}
			}
			// The RCU wait histogram exists per shard and is cumulative
			// (the parser already verified bucket monotonicity and
			// +Inf == _count).
			if f := m["citrus_rcu_sync_wait_seconds"]; f == nil || f.Type != "histogram" {
				t.Fatalf("citrus_rcu_sync_wait_seconds missing: %+v", f)
			}
		})
	}
}

// TestPromMetricsUnderBackpressure induces degradation (a reader
// parked in one shard's critical section with a grace period stalled
// behind it), sheds writes on both faces, and checks the promoted
// series tell the story: kvserver_degraded 1, shed counter advanced,
// a nonzero active-stall gauge on some shard, and a growing
// grace-period age. /healthz must agree.
func TestPromMetricsUnderBackpressure(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 8
	cfg.stallTimeout = 10 * time.Millisecond
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	mux := s.statsMux()
	f := s.store.(*forestStore).f

	s.exec(h, "SET 1 one")

	pr := f.Domain(5).Register()
	defer pr.Unregister()
	pr.ReadLock()
	parked := true
	defer func() {
		if parked {
			pr.ReadUnlock()
		}
	}()
	syncDone := make(chan struct{})
	go func() {
		defer close(syncDone)
		f.Domain(5).Synchronize()
	}()

	// Wait for the stall detector to flip the server degraded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled shard never degraded /healthz")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Shed one write per face.
	if got, _ := s.exec(h, "SET 7 seven"); !strings.HasPrefix(got, "BUSY") {
		t.Fatalf("degraded SET = %q, want BUSY…", got)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("PUT", "/kv/8", strings.NewReader("eight")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded PUT: status %d", rec.Code)
	}

	m := promScrape(t, s)
	if v := m["kvserver_degraded"].Samples[0].Value; v != 1 {
		t.Fatalf("kvserver_degraded = %v, want 1", v)
	}
	if v := m["kvserver_shed_writes_total"].Samples[0].Value; v < 2 {
		t.Fatalf("kvserver_shed_writes_total = %v, want ≥ 2", v)
	}
	if v := m["kvserver_stall_reports_total"].Samples[0].Value; v < 1 {
		t.Fatalf("kvserver_stall_reports_total = %v, want ≥ 1", v)
	}
	var stalls, oldest float64
	for _, sm := range m["citrus_rcu_active_stalls"].Samples {
		stalls += sm.Value
	}
	for _, sm := range m["citrus_rcu_oldest_sync_age_seconds"].Samples {
		if sm.Value > oldest {
			oldest = sm.Value
		}
	}
	if stalls < 1 {
		t.Fatalf("citrus_rcu_active_stalls sums to %v, want ≥ 1", stalls)
	}
	if oldest <= 0 {
		t.Fatalf("citrus_rcu_oldest_sync_age_seconds max = %v, want > 0", oldest)
	}
	// The stalled shard specifically carries the gauge.
	if sm := m["citrus_rcu_active_stalls"].Sample("shard", "5"); sm == nil || sm.Value < 1 {
		t.Fatalf("shard 5 active_stalls = %+v, want ≥ 1", sm)
	}

	// Recovery: the gauges return to zero and the payload still parses.
	pr.ReadUnlock()
	parked = false
	<-syncDone
	deadline = time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m = promScrape(t, s)
	if v := m["kvserver_degraded"].Samples[0].Value; v != 0 {
		t.Fatalf("kvserver_degraded after recovery = %v, want 0", v)
	}
}

// TestShardedTraceEndpoint lifts PR6's restriction: with -shards the
// flight recorder now works per shard and /debug/trace serves the
// merged, shard-tagged dump (and its Chrome form renders one process
// per shard).
func TestShardedTraceEndpoint(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 4
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	mux := s.statsMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/trace with tracing disabled: status %d, want 404", rec.Code)
	}

	s.store.EnableTracing()
	const n = 64
	for k := 0; k < n; k++ {
		s.exec(h, fmt.Sprintf("SET %d v%d", k, k))
	}
	for k := 0; k < n; k++ {
		s.exec(h, fmt.Sprintf("GET %d", k))
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", rec.Code)
	}
	var tr struct {
		Rings []struct {
			ID    uint32 `json:"id"`
			Shard int    `json:"shard"`
		} `json:"rings"`
		Events []struct {
			Start int64  `json:"start"`
			Type  string `json:"type"`
			Shard int    `json:"shard"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("/debug/trace: bad JSON: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("merged trace has no events")
	}
	shardsSeen := map[int]bool{}
	for i, ev := range tr.Events {
		shardsSeen[ev.Shard] = true
		if i > 0 && ev.Start < tr.Events[i-1].Start {
			t.Fatalf("merged events out of time order at %d", i)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("expected events from several shards, got %v", shardsSeen)
	}
	ringIDs := map[uint32]bool{}
	for _, ri := range tr.Rings {
		if ringIDs[ri.ID] {
			t.Fatalf("duplicate ring ID %d in merged dump", ri.ID)
		}
		ringIDs[ri.ID] = true
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace?format=chrome: status %d", rec.Code)
	}
	var ct struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace: bad JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range ct.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) < 2 {
		t.Fatalf("chrome trace should use one pid per shard, got %v", pids)
	}
}

// TestFlavorSelection exercises every -flavor name on both backends:
// the store runs real write traffic (so deletes drive grace periods
// through the selected flavor), the Prometheus payload carries the
// flavor label on the info metric and the RCU series, and the JSON
// metrics document reports the name.
func TestFlavorSelection(t *testing.T) {
	for _, flavor := range []string{"scalable", "classic", "ebr"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", flavor, shards), func(t *testing.T) {
				cfg := defaultKVConfig()
				cfg.flavor = flavor
				cfg.shards = shards
				s := newServer(cfg)
				defer s.store.Close()
				h := s.store.NewHandle()
				defer h.Close()

				for k := 0; k < 128; k++ {
					if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
						t.Fatalf("SET %d = %q", k, got)
					}
				}
				for k := 0; k < 128; k += 2 {
					if got, _ := s.exec(h, fmt.Sprintf("DEL %d", k)); got != "OK" {
						t.Fatalf("DEL %d = %q", k, got)
					}
				}
				if got := s.store.Len(); got != 64 {
					t.Fatalf("Len = %d, want 64", got)
				}
				if err := s.store.CheckInvariants(); err != nil {
					t.Fatal(err)
				}

				m := promScrape(t, s)
				info := m["kvserver_rcu_flavor_info"]
				if info == nil || len(info.Samples) != 1 || info.Samples[0].Label("flavor") != flavor {
					t.Fatalf("kvserver_rcu_flavor_info = %+v, want one sample labeled %q", info, flavor)
				}
				syncs := m["citrus_rcu_synchronizes_total"]
				if syncs == nil || len(syncs.Samples) != shards {
					t.Fatalf("citrus_rcu_synchronizes_total: %+v, want %d shard samples", syncs, shards)
				}
				for _, sm := range syncs.Samples {
					if got := sm.Label("flavor"); got != flavor {
						t.Fatalf("rcu series flavor label = %q, want %q", got, flavor)
					}
				}

				var doc map[string]any
				if err := json.Unmarshal([]byte(metricsJSON(t, s)), &doc); err != nil {
					t.Fatal(err)
				}
				if got := doc["flavor"]; got != flavor {
					t.Fatalf("/metrics flavor = %v, want %q", got, flavor)
				}
			})
		}
	}
}

// metricsJSON GETs the JSON /metrics document off the server mux.
func metricsJSON(t *testing.T, s *server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.statsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	return rec.Body.String()
}
