package main

import (
	"context"
	"fmt"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/rcu"
)

// newRCUFlavor maps a -flavor name to a factory producing one flavor
// instance per call (the forest backend calls it once per shard, so
// shards never share grace-period state). The three names cover the
// library's reclamation designs: "scalable" is the per-reader
// counter+flag rcu.Domain (the default and the paper's design),
// "classic" is the single-counter rcu.ClassicDomain, and "ebr" is the
// epoch-based rcu.EpochDomain. Every flavor returned here implements
// rcu.StallControl and rcu.StatsSource, which the stores rely on for
// the stall detector and the degradation probes.
func newRCUFlavor(name string) (func() rcu.Flavor, error) {
	switch name {
	case "", "scalable":
		return func() rcu.Flavor { return rcu.NewDomain() }, nil
	case "classic":
		return func() rcu.Flavor { return rcu.NewClassicDomain() }, nil
	case "ebr":
		return func() rcu.Flavor { return rcu.NewEpochDomain() }, nil
	default:
		return nil, fmt.Errorf("unknown RCU flavor %q (want scalable, classic, or ebr)", name)
	}
}

// flavorStats reads a flavor's grace-period statistics, or a zero
// Stats for a flavor that cannot report them (none of the built-in
// three; the assertion is belt-and-braces for future flavors).
func flavorStats(f rcu.Flavor) rcu.Stats {
	if src, ok := f.(rcu.StatsSource); ok {
		return src.Stats()
	}
	return rcu.Stats{}
}

// armStallDetector applies the shared stall-detector config to one
// shard's flavor, if the flavor supports it.
func armStallDetector(f rcu.Flavor, cfg kvConfig, shard int, onStall func(shard int, r rcu.StallReport)) {
	sc, ok := f.(rcu.StallControl)
	if !ok {
		return
	}
	sc.SetSiteCapture(true)
	if cfg.stallTimeout > 0 {
		sc.SetStallTimeout(cfg.stallTimeout)
		sc.SetStallHandler(func(r rcu.StallReport) { onStall(shard, r) })
	}
}

// store abstracts the server's data plane so the TCP protocol and the
// HTTP handlers are identical whether the backend is one Citrus tree
// (the default) or a citrus.Forest of independently reclaimed shards
// (-shards > 1). The degradation probes aggregate across shards: the
// router is hash-based, so any connection's next write may land on any
// shard, and the server must shed writes when ANY shard is unhealthy.
type store interface {
	NewHandle() storeHandle
	Len() int
	CheckInvariants() error

	// Stats returns the folded operation counters with the merged RCU
	// block (the forest sums shard counters and merges wait histograms
	// bucket-wise), feeding /debug/citrus's derived figures.
	Stats() citrus.Stats
	// Metrics is the store's part of the /metrics document, keyed by
	// section name; the server merges its own "server" block in.
	Metrics() map[string]any

	// ActiveStalls sums stalled grace-period waits across every shard
	// domain. MaxQueueDepth is the deepest single shard's reclaimer
	// backlog — the watermark comparison is per shard, because each
	// shard's reclaimer carries its own watermark. QueueDepth is the
	// summed backlog, for reporting.
	ActiveStalls() int64
	MaxQueueDepth() int64
	QueueDepth() int64

	// ShardObs returns the per-shard observability snapshot, one entry
	// per shard (a single entry for the unsharded backend), feeding the
	// Prometheus exposition's shard-labeled series.
	ShardObs() []shardObs

	// EnableTracing attaches the flight recorder: one per tree, or one
	// per shard for the forest backend. TracingEnabled reports whether
	// a recorder is attached; DumpTrace snapshots it — for the forest,
	// every shard's rings merged onto one clock with events tagged by
	// shard (citrustrace.MergeShards).
	EnableTracing()
	TracingEnabled() bool
	DumpTrace() citrustrace.Trace

	// Barrier waits until every reclamation callback enqueued before
	// the call has run, on every shard — the snapshotter's flush point
	// between finishing its scan and deleting WAL history (see
	// durableStore.snapshotOnce).
	Barrier()

	// Close drains retired nodes through their grace periods on every
	// shard and stops the reclaimers.
	Close()
}

// shardObs is one shard's observability snapshot: the tree's operation
// counters with its merged RCU block, and the shard reclaimer's queue
// accounting. The Prometheus handler turns each entry into
// shard-labeled series.
type shardObs struct {
	Tree    citrus.Stats
	Reclaim rcu.ReclaimerStats
}

// storeHandle is the per-connection view of the store: the subset of
// citrus.Handle / citrus.ForestHandle the protocol uses. Both satisfy
// it directly. RangeScan is the weakly consistent in-order scan over
// [lo, hi) — every key present for the whole scan appears exactly once,
// in ascending order, but keys updated concurrently may or may not be
// seen (the RCU read-side contract; the forest merges its shards into
// one ascending stream).
type storeHandle interface {
	Get(key int64) (string, bool)
	Insert(key int64, value string) bool
	DeleteCtx(ctx context.Context, key int64) (bool, error)
	RangeScan(lo, hi int64, fn func(key int64, value string) bool)
	// RangeScanLimit is the bounded scan both faces serve: at most limit
	// pairs, globally ascending. The forest's implementation buffers at
	// most limit pairs per shard however large the range is, which is
	// why the server routes every capped scan through it rather than
	// counting inside a plain RangeScan callback.
	RangeScanLimit(lo, hi int64, limit int, fn func(key int64, value string) bool)
	// ScanBatched is the full scan with bounded reader dwell: the
	// read-side critical section is dropped and re-entered every batch
	// pairs, so a whole-store traversal (the fuzzy snapshotter's scan)
	// never parks grace periods for its full duration.
	ScanBatched(batch int, fn func(key int64, value string) bool)
	Close()
}

// treeStore is the unsharded backend: one tree, one flavor, one
// reclaimer — the shape the rest of the file had before -shards. The
// flavor is whatever -flavor selected; everything here goes through
// the rcu.Flavor seam plus the optional StallControl/StatsSource
// surfaces all built-in flavors implement.
type treeStore struct {
	tree *citrus.Tree[int64, string]
	dom  rcu.Flavor
	rec  *rcu.Reclaimer
}

func newTreeStore(cfg kvConfig, onStall func(shard int, r rcu.StallReport)) *treeStore {
	newFlavor, err := newRCUFlavor(cfg.flavor)
	if err != nil {
		panic(err) // main validated the name before building the config
	}
	dom := newFlavor()
	rec := rcu.NewReclaimer(dom,
		rcu.WithHighWatermark(cfg.recHigh),
		rcu.WithHardCap(cfg.recCap))
	armStallDetector(dom, cfg, 0, onStall)
	return &treeStore{
		tree: citrus.NewWithRecycling[int64, string](dom, rec),
		dom:  dom,
		rec:  rec,
	}
}

func (s *treeStore) NewHandle() storeHandle { return s.tree.NewHandle() }
func (s *treeStore) Len() int               { return s.tree.Len() }
func (s *treeStore) CheckInvariants() error { return s.tree.CheckInvariants() }
func (s *treeStore) Stats() citrus.Stats    { return s.tree.Stats() }
func (s *treeStore) ActiveStalls() int64    { return flavorStats(s.dom).ActiveStalls }
func (s *treeStore) MaxQueueDepth() int64   { return s.rec.QueueDepth() }
func (s *treeStore) QueueDepth() int64      { return s.rec.QueueDepth() }
func (s *treeStore) EnableTracing()         { s.tree.EnableTracing() }
func (s *treeStore) TracingEnabled() bool   { return s.tree.TraceRecorder() != nil }
func (s *treeStore) Barrier()               { s.rec.Barrier() }
func (s *treeStore) Close()                 { s.rec.Close() }

func (s *treeStore) DumpTrace() citrustrace.Trace { return s.tree.DumpTrace() }

func (s *treeStore) ShardObs() []shardObs {
	return []shardObs{{Tree: s.tree.Stats(), Reclaim: s.rec.Stats()}}
}

func (s *treeStore) Metrics() map[string]any {
	return map[string]any{
		"tree":      s.tree.Stats(),
		"rcu":       flavorStats(s.dom),
		"reclaimer": s.rec.Stats(),
	}
}

// forestStore is the sharded backend: a citrus.Forest whose shards
// each own a domain and a reclaimer, so a stalled reader in one shard
// leaves the siblings' grace periods — and their reclamation — live.
// Every shard domain gets the same stall detector and every shard
// reclaimer the same watermarks the single tree would have had.
type forestStore struct {
	f *citrus.Forest[int64, string]
}

func newForestStore(cfg kvConfig, onStall func(shard int, r rcu.StallReport)) *forestStore {
	newFlavor, err := newRCUFlavor(cfg.flavor)
	if err != nil {
		panic(err) // main validated the name before building the config
	}
	f := citrus.NewForest[int64, string](cfg.shards,
		citrus.WithShardFlavor[int64](newFlavor),
		citrus.WithShardReclaimerOptions[int64](
			rcu.WithHighWatermark(cfg.recHigh),
			rcu.WithHardCap(cfg.recCap)))
	for i := 0; i < f.NumShards(); i++ {
		armStallDetector(f.Flavor(i), cfg, i, onStall)
	}
	return &forestStore{f: f}
}

func (s *forestStore) NewHandle() storeHandle { return s.f.NewHandle() }
func (s *forestStore) Len() int               { return s.f.Len() }
func (s *forestStore) CheckInvariants() error { return s.f.CheckInvariants() }
func (s *forestStore) Stats() citrus.Stats    { return s.f.Stats().Total }
func (s *forestStore) EnableTracing()         { s.f.EnableTracing() }
func (s *forestStore) TracingEnabled() bool   { return s.f.TraceRecorder(0) != nil }
func (s *forestStore) Barrier()               { s.f.Barrier() }
func (s *forestStore) Close()                 { s.f.Close() }

func (s *forestStore) DumpTrace() citrustrace.Trace { return s.f.DumpTrace() }

func (s *forestStore) ShardObs() []shardObs {
	fs := s.f.Stats()
	obs := make([]shardObs, len(fs.Shards))
	for i := range fs.Shards {
		obs[i] = shardObs{Tree: fs.Shards[i], Reclaim: fs.Reclaim[i]}
	}
	return obs
}

func (s *forestStore) ActiveStalls() int64 {
	var n int64
	for i := 0; i < s.f.NumShards(); i++ {
		n += flavorStats(s.f.Flavor(i)).ActiveStalls
	}
	return n
}

func (s *forestStore) MaxQueueDepth() int64 {
	var deepest int64
	for i := 0; i < s.f.NumShards(); i++ {
		if d := s.f.Reclaimer(i).QueueDepth(); d > deepest {
			deepest = d
		}
	}
	return deepest
}

func (s *forestStore) QueueDepth() int64 {
	var n int64
	for i := 0; i < s.f.NumShards(); i++ {
		n += s.f.Reclaimer(i).QueueDepth()
	}
	return n
}

func (s *forestStore) Metrics() map[string]any {
	fs := s.f.Stats()
	return map[string]any{
		// "tree" keeps the section name the unsharded server uses, so
		// dashboards keyed on it read the fold; the per-shard truth is
		// alongside.
		"tree":       fs.Total,
		"rcu":        fs.Total.RCU,
		"shards":     fs.Shards,
		"reclaimers": fs.Reclaim,
	}
}
