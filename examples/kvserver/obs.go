package main

import (
	"net/http"
	"strconv"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
	"github.com/go-citrus/citrus/citrusstat/promtext"
)

// reqLatencies is the server's request-side latency accounting: one
// lock-free citrusstat histogram per (face, op), where face is the
// protocol the request arrived on ("tcp" line protocol or "http"
// /kv/{key}) and op the verb. Recording is two atomic adds on the
// request path; snapshots feed both the JSON /metrics document (as
// percentile summaries) and /metrics.prom (as full cumulative
// Prometheus histograms).
type reqLatencies struct {
	tcpSet, tcpGet, tcpDel, tcpLen, tcpScan citrusstat.Histogram
	httpGet, httpPut, httpDelete, httpOther citrusstat.Histogram
	httpScan                                citrusstat.Histogram
}

// hist maps (face, op) to its histogram, nil for untracked pairs.
func (l *reqLatencies) hist(face, op string) *citrusstat.Histogram {
	switch face {
	case "tcp":
		switch op {
		case "SET":
			return &l.tcpSet
		case "GET":
			return &l.tcpGet
		case "DEL":
			return &l.tcpDel
		case "LEN":
			return &l.tcpLen
		case "SCAN":
			return &l.tcpScan
		}
	case "http":
		switch op {
		// The range-scan endpoint records under the explicit "SCAN" op so
		// wide scans don't skew the point-GET distribution.
		case "SCAN":
			return &l.httpScan
		case http.MethodGet:
			return &l.httpGet
		case http.MethodPut, http.MethodPost:
			return &l.httpPut
		case http.MethodDelete:
			return &l.httpDelete
		default:
			return &l.httpOther
		}
	}
	return nil
}

// record adds one completed request's duration.
func (l *reqLatencies) record(face, op string, start time.Time) {
	if h := l.hist(face, op); h != nil {
		h.Record(time.Since(start))
	}
}

// reqSeries is the fixed enumeration of tracked (face, op) series, in
// exposition order.
func (l *reqLatencies) series() []struct {
	face, op string
	h        *citrusstat.Histogram
} {
	return []struct {
		face, op string
		h        *citrusstat.Histogram
	}{
		{"tcp", "set", &l.tcpSet},
		{"tcp", "get", &l.tcpGet},
		{"tcp", "del", &l.tcpDel},
		{"tcp", "len", &l.tcpLen},
		{"tcp", "scan", &l.tcpScan},
		{"http", "get", &l.httpGet},
		{"http", "put", &l.httpPut},
		{"http", "delete", &l.httpDelete},
		{"http", "scan", &l.httpScan},
		{"http", "other", &l.httpOther},
	}
}

// summaries renders the JSON /metrics view of the request histograms:
// per-series count and interpolated percentiles, skipping series that
// have seen no traffic.
func (l *reqLatencies) summaries() map[string]any {
	out := map[string]any{}
	for _, s := range l.series() {
		snap := s.h.Snapshot()
		if snap.Total() == 0 {
			continue
		}
		out[s.face+"_"+s.op] = map[string]any{
			"count": snap.Total(),
			"p50":   snap.Percentile(50).String(),
			"p99":   snap.Percentile(99).String(),
			"p999":  snap.Percentile(99.9).String(),
			"mean":  snap.Mean().String(),
		}
	}
	return out
}

// servePromMetrics renders the whole observability surface in the
// Prometheus text exposition format (0.0.4) at /metrics.prom:
//
//   - kvserver_* — the server's own request counters, shed/timeout/
//     stall counters promoted to first-class series, and the per-op
//     request latency histograms (citrusstat's log2 buckets mapped to
//     cumulative `_bucket`/`_sum`/`_count`, bounds in seconds);
//   - citrus_* — per-shard tree, RCU and reclaimer series, one sample
//     per shard under a shard="i" label (shard="0" only, unsharded);
//     the reclamation queue depth/age and grace-period age gauges are
//     the age–memory trade-off signals, scrape-ready.
//
// The payload is strict-parser clean (citrusstat/promtext.Parse); the
// CI smoke job and the httptest coverage both round-trip it.
func (s *server) servePromMetrics(w http.ResponseWriter, r *http.Request) {
	e := promtext.NewEncoder()

	// Server-level series.
	e.Counter("kvserver_ops_total", "Requests handled across both faces.", float64(s.ops.Load()))
	e.Counter("kvserver_connections_total", "TCP connections accepted.", float64(s.conns.Load()))
	e.Counter("kvserver_shed_writes_total", "Writes rejected while degraded (TCP BUSY or HTTP 503).", float64(s.shedWrites.Load()))
	e.Counter("kvserver_gp_timeouts_total", "Deletes whose grace-period wait hit the per-op deadline.", float64(s.gpTimeouts.Load()))
	e.Counter("kvserver_stall_reports_total", "RCU stall-detector reports fired.", float64(s.stallReports.Load()))
	e.Gauge("kvserver_keys", "Keys resident in the store.", float64(s.store.Len()))
	e.Gauge("kvserver_shards", "Configured shard count.", float64(s.cfg.shards))
	// Info-metric idiom: constant 1 carrying the configured RCU flavor
	// as a label, so dashboards comparing flavors can join on it.
	e.Gauge("kvserver_rcu_flavor_info", "Configured RCU reclamation flavor (label carries the name).", 1,
		promtext.L("flavor", s.cfg.flavorName()))
	deg, _ := s.degraded()
	degVal := 0.0
	if deg {
		degVal = 1
	}
	e.Gauge("kvserver_degraded", "1 while the server is shedding writes.", degVal)

	for _, sr := range s.lat.series() {
		e.Histogram("kvserver_request_seconds",
			"Request latency by protocol face and operation.",
			sr.h.Snapshot(),
			promtext.L("face", sr.face), promtext.L("op", sr.op))
	}

	// Durability series, present only when the store runs with -wal-dir.
	// kvserver_recovery_* describe the LAST boot's recovery (gauges that
	// never move after startup — scrape once after a restart to audit
	// what the crash cost); kvserver_wal_* and kvserver_snapshot_* are
	// live.
	if d, ok := s.store.(durabilityObs); ok {
		ws := d.WALStats()
		e.Counter("kvserver_wal_appends_total", "Records appended to the write-ahead log.", float64(ws.Appends))
		e.Counter("kvserver_wal_appended_bytes_total", "Bytes framed into the write-ahead log.", float64(ws.AppendedBytes))
		e.Counter("kvserver_wal_fsyncs_total", "WAL fsyncs issued (group commit batches many appends per fsync).", float64(ws.Fsyncs))
		e.Counter("kvserver_wal_segments_rolled_total", "WAL segments sealed and rolled.", float64(ws.SegmentsRolled))
		e.Counter("kvserver_wal_segments_removed_total", "WAL segments truncated behind durable snapshots.", float64(ws.SegmentsRemoved))
		e.Gauge("kvserver_wal_segments", "WAL segment files on disk.", float64(ws.Segments))
		e.Gauge("kvserver_wal_tail_lsn", "Last assigned log sequence number.", float64(ws.TailLSN))
		e.Gauge("kvserver_wal_durable_lsn", "Last fsynced log sequence number.", float64(ws.DurableLSN))
		e.Gauge("kvserver_wal_pending_bytes", "Bytes buffered in user space, not yet written to the OS.", float64(ws.PendingBytes))
		e.Gauge("kvserver_wal_fsync_policy_info", "Configured fsync policy (label carries the name).", 1,
			promtext.L("policy", d.WALPolicy()))
		e.Histogram("kvserver_wal_fsync_seconds", "WAL fsync latency — the group-commit price per durable ack.", ws.FsyncWait)

		snaps, snapErrs, lastLSN := d.SnapshotObs()
		e.Counter("kvserver_snapshots_total", "Fuzzy snapshots taken since boot.", float64(snaps))
		e.Counter("kvserver_snapshot_errors_total", "Snapshot attempts that failed.", float64(snapErrs))
		e.Gauge("kvserver_snapshot_last_lsn", "LSN the latest installed snapshot is stamped with.", float64(lastLSN))

		rec := d.RecoverySummary()
		e.Gauge("kvserver_recovery_snapshot_lsn", "LSN of the snapshot the last boot recovered from (0 = none).", float64(rec.SnapshotLSN))
		e.Gauge("kvserver_recovery_snapshot_keys", "Keys loaded from the snapshot at the last boot.", float64(rec.SnapshotKeys))
		e.Gauge("kvserver_recovery_records_replayed", "WAL records replayed on top of the snapshot at the last boot.", float64(rec.RecordsReplayed))
		e.Gauge("kvserver_recovery_torn_bytes_truncated", "Bytes of torn WAL tail truncated at the last boot.", float64(rec.TornBytes))
		e.Gauge("kvserver_recovery_wal_segments", "WAL segments present at the last boot.", float64(rec.WALSegments))
		e.Gauge("kvserver_recovery_seconds", "Wall time the last boot's recovery took.", float64(rec.DurationNanos)/1e9)
	}

	// Per-shard library series. The RCU series additionally carry the
	// flavor label: they are the series whose shape depends on the
	// reclamation design (grace-period latency, reader counts), so a
	// scrape comparing -flavor runs can split on it directly.
	flavorL := promtext.L("flavor", s.cfg.flavorName())
	for i, obs := range s.store.ShardObs() {
		shard := promtext.L("shard", strconv.Itoa(i))
		t := obs.Tree
		e.Counter("citrus_tree_contains_total", "Lookup operations.", float64(t.Contains), shard)
		e.Counter("citrus_tree_inserts_total", "Keys inserted.", float64(t.Inserts), shard)
		e.Counter("citrus_tree_insert_retries_total", "Insert validation retries.", float64(t.InsertRetries), shard)
		e.Counter("citrus_tree_deletes_total", "Keys deleted.", float64(t.Deletes), shard)
		e.Counter("citrus_tree_delete_retries_total", "Delete validation retries.", float64(t.DeleteRetries), shard)
		e.Counter("citrus_tree_two_child_deletes_total", "Deletes that took the grace-period path (paper line 74).", float64(t.TwoChildDeletes), shard)
		e.Counter("citrus_tree_delete_timeouts_total", "Bounded deletes whose grace-period wait expired.", float64(t.DeleteTimeouts), shard)
		e.Counter("citrus_tree_nodes_retired_total", "Nodes retired to the reclaimer.", float64(t.NodesRetired), shard)
		e.Counter("citrus_tree_nodes_reused_total", "Retired nodes recycled into new inserts.", float64(t.NodesReused), shard)
		e.Counter("citrus_tree_scans_total", "Range/full scans started.", float64(t.Scans), shard)
		e.Counter("citrus_tree_scan_sections_total", "Read-side critical sections opened by scans (> scans when batched scans re-descend).", float64(t.ScanSections), shard)
		e.Counter("citrus_tree_scan_pairs_total", "Pairs emitted to scan callbacks.", float64(t.ScanPairs), shard)
		e.Counter("citrus_tree_scan_nodes_total", "Nodes visited by scans, emitted or not.", float64(t.ScanNodes), shard)

		if t.RCU != nil {
			rs := *t.RCU
			e.Counter("citrus_rcu_synchronizes_total", "Grace periods driven to completion.", float64(rs.Synchronizes), shard, flavorL)
			e.Counter("citrus_rcu_stalls_total", "Grace-period stall reports.", float64(rs.Stalls), shard, flavorL)
			e.Counter("citrus_rcu_sync_abandoned_total", "Bounded synchronize calls abandoned by their caller.", float64(rs.SyncAbandoned), shard, flavorL)
			e.Counter("citrus_rcu_sync_leads_total", "Synchronize calls that led a reader scan.", float64(rs.SyncLeads), shard, flavorL)
			e.Counter("citrus_rcu_sync_shares_total", "Synchronize calls that piggybacked on another caller's grace period.", float64(rs.SyncShares), shard, flavorL)
			e.Gauge("citrus_rcu_active_stalls", "Synchronize calls currently stalled past the threshold.", float64(rs.ActiveStalls), shard, flavorL)
			e.Gauge("citrus_rcu_active_syncs", "Synchronize calls currently in flight.", float64(rs.ActiveSyncs), shard, flavorL)
			e.Gauge("citrus_rcu_oldest_sync_age_seconds", "Age of the oldest in-flight grace period.", float64(rs.OldestSyncAgeNanos)/1e9, shard, flavorL)
			e.Gauge("citrus_rcu_readers", "Currently registered readers.", float64(rs.Readers), shard, flavorL)
			e.Histogram("citrus_rcu_sync_wait_seconds", "Grace-period wait distribution.", rs.SyncWait, shard, flavorL)
		}

		rc := obs.Reclaim
		e.Counter("citrus_reclaim_deferred_total", "Callbacks deferred to the reclaimer.", float64(rc.Deferred), shard)
		e.Counter("citrus_reclaim_executed_total", "Deferred callbacks executed after their grace period.", float64(rc.Executed), shard)
		e.Counter("citrus_reclaim_dropped_total", "Callbacks shed to the GC at the hard cap.", float64(rc.Dropped), shard)
		e.Counter("citrus_reclaim_expedited_drains_total", "Drains triggered by the high watermark.", float64(rc.ExpeditedDrains), shard)
		e.Counter("citrus_reclaim_grace_periods_total", "Grace periods the reclaimer drove.", float64(rc.GracePeriods), shard)
		e.Gauge("citrus_reclaim_queue_depth", "Callbacks awaiting a grace period.", float64(rc.QueueDepth), shard)
		e.Gauge("citrus_reclaim_queue_high_water", "Deepest queue ever observed.", float64(rc.QueueHighWater), shard)
		e.Gauge("citrus_reclaim_oldest_age_seconds", "Age of the oldest queued callback (memory age).", float64(rc.OldestAgeNanos)/1e9, shard)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w) //nolint:errcheck // best-effort over HTTP
}
