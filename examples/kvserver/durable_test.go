package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// durableServer builds a WAL-backed server over dir, failing the test
// on construction (recovery) errors.
func durableServer(t *testing.T, dir string, mut func(*kvConfig)) *server {
	t.Helper()
	cfg := defaultKVConfig()
	cfg.walDir = dir
	cfg.demo = false
	if mut != nil {
		mut(&cfg)
	}
	s, err := buildServer(cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	return s
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, func(c *kvConfig) { c.snapEvery = 0 }) // WAL-only recovery
	h := s.store.NewHandle()
	for k := 0; k < 200; k++ {
		if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
			t.Fatalf("SET %d: %q", k, got)
		}
	}
	for k := 0; k < 200; k += 2 {
		if got, _ := s.exec(h, fmt.Sprintf("DEL %d", k)); got != "OK" {
			t.Fatalf("DEL %d: %q", k, got)
		}
	}
	h.Close()
	s.store.Close()

	s2 := durableServer(t, dir, nil)
	defer s2.store.Close()
	ds := s2.store.(*durableStore)
	rec := ds.RecoverySummary()
	if rec.RecordsReplayed != 300 || rec.ReplaySets != 200 || rec.ReplayDels != 100 {
		t.Fatalf("recovery summary %+v, want 300 replayed (200 sets, 100 dels)", rec)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("clean shutdown reported %d torn bytes", rec.TornBytes)
	}
	h2 := s2.store.NewHandle()
	defer h2.Close()
	for k := 0; k < 200; k++ {
		want := "NOT_FOUND"
		if k%2 == 1 {
			want = "VALUE v" + fmt.Sprint(k)
		}
		if got, _ := s2.exec(h2, fmt.Sprintf("GET %d", k)); got != want {
			t.Fatalf("after recovery GET %d = %q, want %q", k, got, want)
		}
	}
	if err := s2.store.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

func TestDurableRecoverySharded(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, func(c *kvConfig) { c.shards = 4; c.snapEvery = 0 })
	h := s.store.NewHandle()
	for k := 0; k < 128; k++ {
		s.exec(h, fmt.Sprintf("SET %d v%d", k, k))
	}
	h.Close()
	s.store.Close()

	s2 := durableServer(t, dir, func(c *kvConfig) { c.shards = 4 })
	defer s2.store.Close()
	if n := s2.store.Len(); n != 128 {
		t.Fatalf("forest recovered %d keys, want 128", n)
	}
	if err := s2.store.CheckInvariants(); err != nil {
		t.Fatalf("forest invariants after recovery: %v", err)
	}
}

// TestSnapshotTruncatesWAL drives enough writes to trip the snapshot
// trigger, waits for the snapshotter, and verifies (a) the WAL was
// truncated behind the snapshot, (b) a reopen recovers from snapshot +
// suffix — not the full log.
func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, func(c *kvConfig) { c.snapEvery = 100 })
	ds := s.store.(*durableStore)
	h := s.store.NewHandle()
	const n = 350
	for k := 0; k < n; k++ {
		if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
			t.Fatalf("SET %d: %q", k, got)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snaps, errs, _ := ds.SnapshotObs(); snaps >= 1 {
			if errs > 0 {
				t.Fatalf("snapshot errors: %d", errs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshotter never ran; stats %+v", ds.WALStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.Close()
	s.store.Close()

	s2 := durableServer(t, dir, nil)
	defer s2.store.Close()
	rec := s2.store.(*durableStore).RecoverySummary()
	if rec.SnapshotLSN == 0 || rec.SnapshotKeys == 0 {
		t.Fatalf("reopen did not use the snapshot: %+v", rec)
	}
	if rec.RecordsReplayed >= n {
		t.Fatalf("replayed %d records — the full log; snapshot did not shorten recovery (%+v)", rec.RecordsReplayed, rec)
	}
	if n2 := s2.store.Len(); n2 != n {
		t.Fatalf("recovered %d keys, want %d", n2, n)
	}
}

// TestDurableConcurrentWriters checks the stripe-lock invariant end to
// end: concurrent writers on disjoint key ranges, all acked writes
// must survive a clean close + recovery. Run with -race this also
// exercises the apply/append/ack path for data races.
func TestDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, func(c *kvConfig) { c.snapEvery = 150 })
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.store.NewHandle()
			defer h.Close()
			base := int64(w * 10000)
			for i := int64(0); i < perWorker; i++ {
				if !h.Insert(base+i, fmt.Sprintf("w%d-%d", w, i)) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
			// Delete every third key; deletes are effective and logged.
			for i := int64(0); i < perWorker; i += 3 {
				h.DeleteCtx(t.Context(), base+i)
			}
		}(w)
	}
	wg.Wait()
	s.store.Close()

	s2 := durableServer(t, dir, nil)
	defer s2.store.Close()
	h := s2.store.NewHandle()
	defer h.Close()
	for w := 0; w < workers; w++ {
		base := int64(w * 10000)
		for i := int64(0); i < perWorker; i++ {
			v, ok := h.Get(base + i)
			if i%3 == 0 {
				if ok {
					t.Fatalf("deleted key %d recovered as %q", base+i, v)
				}
			} else if !ok || v != fmt.Sprintf("w%d-%d", w, i) {
				t.Fatalf("key %d: (%q, %v)", base+i, v, ok)
			}
		}
	}
}

// TestDrainUnderLoadFlushesWAL pins the SIGTERM drain-ordering fix:
// writers hammer the TCP face when SIGTERM lands with a short drain
// budget, so the drain times out with connections open. The fixed path
// force-closes their sockets, WAITS for the handlers, and only then
// closes the WAL — so run() must return cleanly (the old path raced
// live handlers against store close) and every acknowledged write must
// be recoverable from the WAL directory.
func TestDrainUnderLoadFlushesWAL(t *testing.T) {
	// Keep the test process alive across the SIGTERM we send ourselves:
	// runNotify only registers its handler once keepServing begins.
	sink := make(chan os.Signal, 1)
	signal.Notify(sink, syscall.SIGTERM)
	defer signal.Stop(sink)

	dir := t.TempDir()
	cfg := defaultKVConfig()
	cfg.walDir = dir
	cfg.demo = false
	cfg.drainTimeout = 100 * time.Millisecond
	ready := make(chan runInfo, 1)
	done := make(chan error, 1)
	go func() { done <- runNotify("127.0.0.1:0", "", true, false, cfg, ready) }()
	info := <-ready

	const workers = 4
	acked := make([][]int64, workers)
	var ackedCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", info.tcpAddr)
			if err != nil {
				t.Errorf("worker %d: dial: %v", w, err)
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					// Keep the connection OPEN and idle so the drain has a
					// straggler to force-close.
					<-time.After(5 * time.Second)
					return
				default:
				}
				key := int64(w)*1_000_000 + i
				if _, err := fmt.Fprintf(conn, "SET %d drain-%d\n", key, key); err != nil {
					return
				}
				line, err := rd.ReadString('\n')
				if err != nil {
					return
				}
				if strings.TrimSpace(line) == "OK" {
					acked[w] = append(acked[w], key)
					ackedCount.Add(1)
				}
			}
		}(w)
	}

	// Let the writers make progress, then pull the trigger mid-churn.
	for waited := 0; ackedCount.Load() < 50 && waited < 200; waited++ {
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	close(stop)
	wg.Wait()

	// Every acknowledged write must be recoverable from the WAL dir.
	s2 := durableServer(t, dir, nil)
	defer s2.store.Close()
	h := s2.store.NewHandle()
	defer h.Close()
	total := 0
	for w := range acked {
		for _, key := range acked[w] {
			if _, ok := h.Get(key); !ok {
				t.Fatalf("acknowledged key %d lost across drain", key)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged; the test exercised nothing")
	}
	t.Logf("drain preserved all %d acknowledged writes", total)
}

// TestDurablePromSeries asserts the durability series the crash
// harness scrapes are present and strict-parser clean.
func TestDurablePromSeries(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	h := s.store.NewHandle()
	for k := 0; k < 32; k++ {
		s.exec(h, fmt.Sprintf("SET %d v%d", k, k))
	}
	h.Close()
	s.store.Close()

	// Reopen so the recovery series describe a real recovery.
	s2 := durableServer(t, dir, nil)
	defer s2.store.Close()
	m := promScrape(t, s2)
	for _, name := range []string{
		"kvserver_wal_appends_total",
		"kvserver_wal_fsyncs_total",
		"kvserver_wal_tail_lsn",
		"kvserver_wal_durable_lsn",
		"kvserver_wal_fsync_policy_info",
		"kvserver_wal_fsync_seconds",
		"kvserver_snapshots_total",
		"kvserver_recovery_snapshot_lsn",
		"kvserver_recovery_records_replayed",
		"kvserver_recovery_torn_bytes_truncated",
		"kvserver_recovery_seconds",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("/metrics.prom missing %s", name)
		}
	}
	if v := m["kvserver_recovery_records_replayed"].Samples[0].Value; v != 32 {
		t.Fatalf("kvserver_recovery_records_replayed = %v, want 32", v)
	}
	// In-memory servers must NOT emit the durability series.
	mem := newServer(defaultKVConfig())
	defer mem.store.Close()
	m2 := promScrape(t, mem)
	if _, ok := m2["kvserver_wal_appends_total"]; ok {
		t.Fatal("in-memory server emitted kvserver_wal_* series")
	}
}

// TestDurableFsyncPolicies runs the write path under each policy; the
// nofsync alias must map to none and still serve correctly (its data
// loss only shows under SIGKILL, which the crash harness covers).
func TestDurableFsyncPolicies(t *testing.T) {
	for _, pol := range []string{"always", "group", "none", "nofsync"} {
		t.Run(pol, func(t *testing.T) {
			dir := t.TempDir()
			s := durableServer(t, dir, func(c *kvConfig) { c.fsync = pol })
			h := s.store.NewHandle()
			for k := 0; k < 50; k++ {
				if got, _ := s.exec(h, fmt.Sprintf("SET %d p%d", k, k)); got != "OK" {
					t.Fatalf("SET %d under %s: %q", k, pol, got)
				}
			}
			h.Close()
			s.store.Close() // clean close flushes even under none

			s2 := durableServer(t, dir, nil)
			defer s2.store.Close()
			if n := s2.store.Len(); n != 50 {
				t.Fatalf("policy %s: recovered %d keys, want 50", pol, n)
			}
		})
	}
}

func TestBuildServerRejectsBadFsync(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.walDir = t.TempDir()
	cfg.fsync = "sometimes"
	if _, err := buildServer(cfg); err == nil {
		t.Fatal("buildServer accepted -fsync sometimes")
	}
}
