package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/internal/snapshot"
	"github.com/go-citrus/citrus/internal/wal"
)

// The durable store wraps either backend (tree or forest) with a
// write-ahead log and fuzzy snapshots, so a kvserver started with
// -wal-dir recovers every acknowledged write after a crash.
//
// The one invariant everything rests on: a write is APPLIED to the
// in-memory store BEFORE its record is APPENDED to the WAL, and both
// happen under the key's stripe lock, so for any single key the WAL
// record order equals the apply order. Records are appended only for
// EFFECTIVE writes (an Insert that returned true, a delete that
// deleted), so each key's log history strictly alternates SET/DEL.
// Together these make the fuzzy snapshot sound: when the snapshotter
// captures snapLSN = TailLSN, every record ≤ snapLSN is already
// applied, so the scan observes each key at some point AT OR AFTER
// snapLSN — and replaying the suffix (LSN > snapLSN) of an alternating
// effective history onto any such state converges to the true final
// state (the full argument is in docs/DURABILITY.md).
//
// Acknowledgment order is the usual WAL discipline: apply, append,
// then block on WaitDurable before replying to the client — so under
// -fsync always/group an acked write is on disk, while -fsync none
// acknowledges from the user-space buffer and exists to be the
// crash-torture negative control.

// Record encoding: one byte op tag, 8-byte little-endian key, and for
// SET the value bytes.
const (
	opSet = 0x01
	opDel = 0x02
)

func encodeSet(key int64, value string) []byte {
	rec := make([]byte, 9+len(value))
	rec[0] = opSet
	binary.LittleEndian.PutUint64(rec[1:9], uint64(key))
	copy(rec[9:], value)
	return rec
}

func encodeDel(key int64) []byte {
	rec := make([]byte, 9)
	rec[0] = opDel
	binary.LittleEndian.PutUint64(rec[1:9], uint64(key))
	return rec
}

func decodeRecord(payload []byte) (op byte, key int64, value string, err error) {
	if len(payload) < 9 {
		return 0, 0, "", fmt.Errorf("wal record too short: %d bytes", len(payload))
	}
	op = payload[0]
	if op != opSet && op != opDel {
		return 0, 0, "", fmt.Errorf("wal record has unknown op %#x", op)
	}
	key = int64(binary.LittleEndian.Uint64(payload[1:9]))
	if op == opSet {
		value = string(payload[9:])
	} else if len(payload) != 9 {
		return 0, 0, "", fmt.Errorf("wal DEL record carries %d trailing bytes", len(payload)-9)
	}
	return op, key, value, nil
}

// numStripes is the write-serialization fan-out: writes to the same
// stripe apply+append atomically with respect to each other. 64 keeps
// per-key ordering cheap while letting unrelated keys proceed in
// parallel.
const numStripes = 64

func stripeOf(key int64) int {
	// Fibonacci hashing mixes low-entropy keys across stripes.
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> 58)
}

// recoverySummary is the structured report of one boot's recovery,
// served under /metrics "recovery" and as kvserver_recovery_* gauges.
type recoverySummary struct {
	SnapshotLSN     uint64 `json:"snapshot_lsn"`
	SnapshotKeys    int64  `json:"snapshot_keys"`
	WALRecords      int64  `json:"wal_records"`
	RecordsReplayed int64  `json:"records_replayed"`
	ReplaySets      int64  `json:"replay_sets"`
	ReplayDels      int64  `json:"replay_dels"`
	TornBytes       int64  `json:"torn_bytes_truncated"`
	WALSegments     int    `json:"wal_segments"`
	DurationNanos   int64  `json:"duration_nanos"`
}

// durabilityObs is the optional store surface the observability layer
// type-asserts to publish WAL/snapshot/recovery series.
type durabilityObs interface {
	WALStats() wal.Stats
	WALPolicy() string
	RecoverySummary() recoverySummary
	SnapshotObs() (snapshots, errs int64, lastLSN uint64)
}

// durableStore decorates a store with the WAL, recovery, and the
// background snapshotter. Reads and observability pass through to the
// wrapped backend; writes go through durableHandle.
type durableStore struct {
	store // the wrapped in-memory backend (tree or forest)

	log      *wal.Log
	dir      string
	snapEver int

	stripes [numStripes]sync.Mutex

	recovery recoverySummary

	sinceSnap   atomic.Int64
	snapshots   atomic.Int64
	snapErrs    atomic.Int64
	lastSnapLSN atomic.Uint64

	snapc chan struct{}
	stopc chan struct{}
	donec chan struct{}
}

// newDurableStore recovers the store's state from cfg.walDir (latest
// valid snapshot, then the WAL suffix, tolerating a torn tail) into
// inner, and arms the log and the snapshotter. On error the inner
// store is NOT closed; the caller owns it.
func newDurableStore(inner store, cfg kvConfig) (*durableStore, error) {
	pol, err := wal.ParsePolicy(cfg.fsync)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	d := &durableStore{
		store:    inner,
		dir:      cfg.walDir,
		snapEver: cfg.snapEvery,
		snapc:    make(chan struct{}, 1),
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
	}

	// Phase 1: the snapshot base image.
	h := inner.NewHandle()
	snapLSN, snapKeys, err := snapshot.Load(cfg.walDir, func(k int64, v string) error {
		if !h.Insert(k, v) {
			return fmt.Errorf("snapshot key %d already present", k)
		}
		return nil
	})
	if err != nil && !errors.Is(err, snapshot.ErrNoSnapshot) {
		h.Close()
		return nil, fmt.Errorf("loading snapshot: %w", err)
	}
	d.recovery.SnapshotLSN = snapLSN
	d.recovery.SnapshotKeys = snapKeys

	// Phase 2: open the log (truncating a torn tail) and replay the
	// suffix. Replayed SETs may hit keys the fuzzy snapshot already saw
	// in a newer state, and replayed DELs may miss — both are the
	// convergence the header comment describes, not errors.
	l, rinfo, err := wal.Open(cfg.walDir, wal.Options{Policy: pol})
	if err != nil {
		h.Close()
		return nil, fmt.Errorf("opening wal: %w", err)
	}
	d.log = l
	d.recovery.WALRecords = rinfo.Records
	d.recovery.TornBytes = rinfo.TornBytes
	d.recovery.WALSegments = rinfo.Segments
	if rinfo.TornBytes > 0 {
		log.Printf("kvserver: wal %s: truncated %d torn byte(s) from %s", cfg.walDir, rinfo.TornBytes, rinfo.TornFile)
	}
	err = l.Replay(wal.LSN(snapLSN), func(lsn wal.LSN, payload []byte) error {
		op, key, value, derr := decodeRecord(payload)
		if derr != nil {
			return fmt.Errorf("lsn %d: %w", lsn, derr)
		}
		if op == opSet {
			h.Insert(key, value)
			d.recovery.ReplaySets++
		} else {
			h.DeleteCtx(context.Background(), key) //nolint:errcheck // a miss is expected convergence
			d.recovery.ReplayDels++
		}
		d.recovery.RecordsReplayed++
		return nil
	})
	h.Close()
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("replaying wal: %w", err)
	}
	d.recovery.DurationNanos = time.Since(start).Nanoseconds()
	d.lastSnapLSN.Store(snapLSN)
	// Replayed records count against the next snapshot interval, so a
	// server that crashes faster than -snapshot-every still converges
	// to a snapshot instead of replaying an ever-longer log each boot.
	d.sinceSnap.Store(d.recovery.RecordsReplayed)

	go d.snapshotter()
	if d.recovery.SnapshotKeys > 0 || d.recovery.RecordsReplayed > 0 {
		log.Printf("kvserver: recovered %d key(s) from snapshot lsn %d + %d wal record(s) in %v",
			d.recovery.SnapshotKeys, d.recovery.SnapshotLSN, d.recovery.RecordsReplayed,
			time.Duration(d.recovery.DurationNanos))
	}
	return d, nil
}

func (d *durableStore) NewHandle() storeHandle {
	return &durableHandle{storeHandle: d.store.NewHandle(), d: d}
}

// noteWrite counts one logged write toward the snapshot trigger.
func (d *durableStore) noteWrite() {
	if d.snapEver <= 0 {
		return
	}
	if d.sinceSnap.Add(1) >= int64(d.snapEver) {
		select {
		case d.snapc <- struct{}{}:
		default:
		}
	}
}

// snapshotter runs fuzzy snapshots when the write counter trips.
func (d *durableStore) snapshotter() {
	defer close(d.donec)
	for {
		select {
		case <-d.stopc:
			return
		case <-d.snapc:
		}
		if err := d.snapshotOnce(); err != nil {
			d.snapErrs.Add(1)
			log.Printf("kvserver: snapshot failed: %v", err)
		}
	}
}

// snapshotOnce takes one fuzzy snapshot and truncates the log behind
// it. The ordering is the load-bearing part:
//
//  1. capture snapLSN = TailLSN — every record ≤ snapLSN is applied
//     (append happens after apply, under the stripe lock);
//  2. Cut the active segment so truncation later can drop whole
//     segments up to snapLSN;
//  3. scan the store batched (read-side sections dropped every batch,
//     so the snapshot never parks grace periods) into a checksummed
//     temp file, fsync, rename;
//  4. Barrier() — wait until every reclamation callback enqueued
//     before now has run, so no reader (this scan included) still
//     holds memory retired before the snapshot when we start deleting
//     history;
//  5. Publish the manifest (the commit point), then TruncateBefore
//     drops the WAL segments the snapshot supersedes.
//
// A crash anywhere in this sequence leaves either the old snapshot +
// full log, or the new snapshot + suffix — both recover exactly.
func (d *durableStore) snapshotOnce() error {
	d.sinceSnap.Store(0)
	snapLSN := d.log.TailLSN()
	if err := d.log.Cut(); err != nil {
		return err
	}
	h := d.store.NewHandle()
	file, keys, err := snapshot.Write(d.dir, uint64(snapLSN), func(emit func(int64, string) error) error {
		var emitErr error
		h.ScanBatched(512, func(k int64, v string) bool {
			emitErr = emit(k, v)
			return emitErr == nil
		})
		return emitErr
	})
	h.Close()
	if err != nil {
		return err
	}
	d.store.Barrier()
	if err := snapshot.Publish(d.dir, file, uint64(snapLSN), keys); err != nil {
		return err
	}
	if _, err := d.log.TruncateBefore(snapLSN); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	d.snapshots.Add(1)
	d.lastSnapLSN.Store(uint64(snapLSN))
	return nil
}

// Close stops the snapshotter, flushes and closes the log (so every
// buffered record is durable before the process exits — the drain
// path's flush point), then closes the wrapped store.
func (d *durableStore) Close() {
	close(d.stopc)
	<-d.donec
	if err := d.log.Close(); err != nil {
		log.Printf("kvserver: wal close: %v", err)
	}
	d.store.Close()
}

func (d *durableStore) Metrics() map[string]any {
	m := d.store.Metrics()
	m["wal"] = d.log.Stats()
	m["recovery"] = d.recovery
	m["snapshot"] = map[string]any{
		"count":    d.snapshots.Load(),
		"errors":   d.snapErrs.Load(),
		"last_lsn": d.lastSnapLSN.Load(),
	}
	return m
}

func (d *durableStore) WALStats() wal.Stats              { return d.log.Stats() }
func (d *durableStore) WALPolicy() string                { return d.log.Policy().String() }
func (d *durableStore) RecoverySummary() recoverySummary { return d.recovery }
func (d *durableStore) SnapshotObs() (int64, int64, uint64) {
	return d.snapshots.Load(), d.snapErrs.Load(), d.lastSnapLSN.Load()
}

// durableHandle wraps one connection's handle: reads pass through,
// effective writes are logged and acknowledged only once durable.
type durableHandle struct {
	storeHandle
	d *durableStore
}

// logged appends an effective write's record (caller holds the key's
// stripe lock) and returns the LSN to wait on.
func (h *durableHandle) logged(rec []byte) (wal.LSN, error) {
	lsn, err := h.d.log.Append(rec)
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			// Shutdown race: the store applied the write but the log is
			// closed. The drain path force-closes connections before it
			// closes the log, so no client can still be waiting on this
			// reply — the write is simply lost with the unacked window.
			return 0, nil
		}
		// A WAL that cannot append is a durability guarantee we can no
		// longer honor for ANY future ack; dying loudly beats silently
		// acknowledging writes into the void.
		panic(fmt.Sprintf("kvserver: wal append failed: %v", err))
	}
	return lsn, nil
}

func (h *durableHandle) Insert(key int64, value string) bool {
	st := &h.d.stripes[stripeOf(key)]
	st.Lock()
	ok := h.storeHandle.Insert(key, value)
	var lsn wal.LSN
	if ok {
		lsn, _ = h.logged(encodeSet(key, value))
	}
	st.Unlock()
	if !ok {
		return false
	}
	h.d.noteWrite()
	h.waitDurable(lsn)
	return true
}

func (h *durableHandle) DeleteCtx(ctx context.Context, key int64) (bool, error) {
	st := &h.d.stripes[stripeOf(key)]
	st.Lock()
	// ok means the delete took effect (even when err reports the
	// grace-period wait timed out) — exactly the condition under which
	// the write must be logged.
	ok, err := h.storeHandle.DeleteCtx(ctx, key)
	var lsn wal.LSN
	if ok {
		lsn, _ = h.logged(encodeDel(key))
	}
	st.Unlock()
	if !ok {
		return ok, err
	}
	h.d.noteWrite()
	h.waitDurable(lsn)
	return ok, err
}

// waitDurable blocks until lsn is durable under the configured policy.
// lsn 0 means the append was elided by the shutdown race — nothing to
// wait for.
func (h *durableHandle) waitDurable(lsn wal.LSN) {
	if lsn == 0 {
		return
	}
	if err := h.d.log.WaitDurable(lsn); err != nil && !errors.Is(err, wal.ErrClosed) {
		panic(fmt.Sprintf("kvserver: wal durability wait failed: %v", err))
	}
}
