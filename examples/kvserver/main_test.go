package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	citrus "github.com/go-citrus/citrus"
)

func newTestServer() (*server, *citrus.Handle[int64, string]) {
	s := newServer()
	return s, s.tree.NewHandle()
}

func TestExecProtocol(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	steps := []struct {
		cmd  string
		want string
	}{
		{"SET 1 hello world", "OK"},
		{"SET 1 other", "EXISTS"},
		{"GET 1", "VALUE hello world"},
		{"GET 2", "NOT_FOUND"},
		{"DEL 2", "NOT_FOUND"},
		{"DEL 1", "OK"},
		{"GET 1", "NOT_FOUND"},
		{"LEN", "LEN 0"},
		{"set 5 lowercase-verb", "OK"},
		{"len", "LEN 1"},
		{"", "ERR empty command"},
		{"SET", "ERR usage: SET <key> <value>"},
		{"SET x y", "ERR usage: SET <key> <value>"},
		{"GET notanumber", "ERR usage: GET <key>"},
		{"DEL", "ERR usage: DEL <key>"},
		{"BOGUS 1", "ERR unknown command BOGUS"},
	}
	for _, st := range steps {
		got, quit := s.exec(h, st.cmd)
		if got != st.want || quit {
			t.Fatalf("exec(%q) = (%q, quit=%v), want (%q, false)", st.cmd, got, quit, st.want)
		}
	}
	if got, quit := s.exec(h, "QUIT"); got != "BYE" || !quit {
		t.Fatalf("QUIT = (%q, %v)", got, quit)
	}
}

func TestServerEndToEnd(t *testing.T) {
	// The full demo: listener, concurrent TCP clients, verification of
	// every reply, invariant check — on ephemeral ports for both the
	// line protocol and the HTTP observability endpoint.
	if err := run("127.0.0.1:0", "127.0.0.1:0", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEndNoHTTP(t *testing.T) {
	if err := run("127.0.0.1:0", "", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEndTraced(t *testing.T) {
	if err := run("127.0.0.1:0", "127.0.0.1:0", false, true); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint exercises /metrics and /debug/citrus against a
// server that has done real work, decoding the JSON and checking that
// the library's counters made it through.
func TestMetricsEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	s.exec(h, "SET 2 two")
	s.exec(h, "SET 1 one")
	s.exec(h, "SET 3 three")
	s.exec(h, "GET 1")
	s.exec(h, "DEL 2") // two children → one grace period

	mux := s.statsMux()
	get := func(path string) map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Fatalf("GET %s: Content-Type %q", path, ct)
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
		return m
	}

	m := get("/metrics")
	srvVars, ok := m["server"].(map[string]any)
	if !ok || srvVars["ops"].(float64) != 5 || srvVars["keys"].(float64) != 2 {
		t.Fatalf("/metrics server section wrong: %v", m["server"])
	}
	tree, ok := m["tree"].(map[string]any)
	if !ok || tree["inserts"].(float64) != 3 || tree["two_child_deletes"].(float64) != 1 {
		t.Fatalf("/metrics tree section wrong: %v", m["tree"])
	}
	rcuVars, ok := m["rcu"].(map[string]any)
	if !ok || rcuVars["synchronizes"].(float64) != 1 {
		t.Fatalf("/metrics rcu section wrong: %v", m["rcu"])
	}

	d := get("/debug/citrus")
	derived, ok := d["derived"].(map[string]any)
	if !ok || derived["grace_periods"].(float64) != 1 || derived["two_child_deletes"].(float64) != 1 {
		t.Fatalf("/debug/citrus derived section wrong: %v", d["derived"])
	}
	if _, ok := d["snapshot"].(map[string]any); !ok {
		t.Fatalf("/debug/citrus missing snapshot: %v", d)
	}

	// /debug/vars serves standard expvar and must at least be valid JSON.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: status %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars: bad JSON: %v", err)
	}
}

// TestTraceEndpoint covers /debug/trace in all three modes: disabled
// (404), native JSON, and the Chrome trace_event form.
func TestTraceEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	mux := s.statsMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/trace with tracing disabled: status %d, want 404", rec.Code)
	}

	s.tree.EnableTracing()
	s.exec(h, "SET 2 two")
	s.exec(h, "SET 1 one")
	s.exec(h, "SET 3 three")
	s.exec(h, "DEL 2") // two children → one grace period

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace: status %d", rec.Code)
	}
	var tr struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("/debug/trace: bad JSON: %v", err)
	}
	byType := map[string]int{}
	for _, ev := range tr.Events {
		byType[ev.Type]++
	}
	if byType["insert"] != 3 || byType["delete"] != 1 {
		t.Fatalf("/debug/trace events wrong: %v", byType)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace?format=chrome: status %d", rec.Code)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace: bad JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// TestPprofEndpoint checks that net/http/pprof is routed on the stats
// mux (the index page lists the standard profiles).
func TestPprofEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	rec := httptest.NewRecorder()
	s.statsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/: status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%.200s", body)
	}
}

func TestValuesWithSpaces(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	if got, _ := s.exec(h, "SET 9 a b c"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	got, _ := s.exec(h, "GET 9")
	if !strings.HasPrefix(got, "VALUE ") || got != "VALUE a b c" {
		t.Fatalf("GET 9 = %q", got)
	}
}
