package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer() (*server, storeHandle) {
	s := newServer(defaultKVConfig())
	return s, s.store.NewHandle()
}

func TestExecProtocol(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	steps := []struct {
		cmd  string
		want string
	}{
		{"SET 1 hello world", "OK"},
		{"SET 1 other", "EXISTS"},
		{"GET 1", "VALUE hello world"},
		{"GET 2", "NOT_FOUND"},
		{"DEL 2", "NOT_FOUND"},
		{"DEL 1", "OK"},
		{"GET 1", "NOT_FOUND"},
		{"LEN", "LEN 0"},
		{"set 5 lowercase-verb", "OK"},
		{"len", "LEN 1"},
		{"", "ERR empty command"},
		{"SET", "ERR usage: SET <key> <value>"},
		{"SET x y", "ERR usage: SET <key> <value>"},
		{"GET notanumber", "ERR usage: GET <key>"},
		{"DEL", "ERR usage: DEL <key>"},
		{"SCAN", "ERR usage: SCAN <lo> <hi> <n>"},
		{"SCAN 1 2", "ERR usage: SCAN <lo> <hi> <n>"},
		{"SCAN 1 2 x", "ERR usage: SCAN <lo> <hi> <n>"},
		{"SCAN 1 2 0", "ERR usage: SCAN <lo> <hi> <n>"},
		{"BOGUS 1", "ERR unknown command BOGUS"},
	}
	for _, st := range steps {
		got, quit := s.exec(h, st.cmd)
		if got != st.want || quit {
			t.Fatalf("exec(%q) = (%q, quit=%v), want (%q, false)", st.cmd, got, quit, st.want)
		}
	}
	if got, quit := s.exec(h, "QUIT"); got != "BYE" || !quit {
		t.Fatalf("QUIT = (%q, %v)", got, quit)
	}
}

func TestServerEndToEnd(t *testing.T) {
	// The full demo: listener, concurrent TCP clients, verification of
	// every reply, invariant check — on ephemeral ports for both the
	// line protocol and the HTTP observability endpoint.
	if err := run("127.0.0.1:0", "127.0.0.1:0", false, false, defaultKVConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEndNoHTTP(t *testing.T) {
	if err := run("127.0.0.1:0", "", false, false, defaultKVConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndToEndTraced(t *testing.T) {
	if err := run("127.0.0.1:0", "127.0.0.1:0", false, true, defaultKVConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint exercises /metrics and /debug/citrus against a
// server that has done real work, decoding the JSON and checking that
// the library's counters made it through.
func TestMetricsEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	s.exec(h, "SET 2 two")
	s.exec(h, "SET 1 one")
	s.exec(h, "SET 3 three")
	s.exec(h, "GET 1")
	s.exec(h, "DEL 2") // two children → one grace period

	mux := s.statsMux()
	get := func(path string) map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Fatalf("GET %s: Content-Type %q", path, ct)
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
		return m
	}

	m := get("/metrics")
	srvVars, ok := m["server"].(map[string]any)
	if !ok || srvVars["ops"].(float64) != 5 || srvVars["keys"].(float64) != 2 {
		t.Fatalf("/metrics server section wrong: %v", m["server"])
	}
	tree, ok := m["tree"].(map[string]any)
	if !ok || tree["inserts"].(float64) != 3 || tree["two_child_deletes"].(float64) != 1 {
		t.Fatalf("/metrics tree section wrong: %v", m["tree"])
	}
	rcuVars, ok := m["rcu"].(map[string]any)
	if !ok || rcuVars["synchronizes"].(float64) != 1 {
		t.Fatalf("/metrics rcu section wrong: %v", m["rcu"])
	}

	d := get("/debug/citrus")
	derived, ok := d["derived"].(map[string]any)
	if !ok || derived["grace_periods"].(float64) != 1 || derived["two_child_deletes"].(float64) != 1 {
		t.Fatalf("/debug/citrus derived section wrong: %v", d["derived"])
	}
	if _, ok := d["snapshot"].(map[string]any); !ok {
		t.Fatalf("/debug/citrus missing snapshot: %v", d)
	}

	// /debug/vars serves standard expvar and must at least be valid JSON.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: status %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars: bad JSON: %v", err)
	}
}

// TestTraceEndpoint covers /debug/trace in all three modes: disabled
// (404), native JSON, and the Chrome trace_event form.
func TestTraceEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	mux := s.statsMux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/trace with tracing disabled: status %d, want 404", rec.Code)
	}

	s.store.EnableTracing()
	s.exec(h, "SET 2 two")
	s.exec(h, "SET 1 one")
	s.exec(h, "SET 3 three")
	s.exec(h, "DEL 2") // two children → one grace period

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace: status %d", rec.Code)
	}
	var tr struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("/debug/trace: bad JSON: %v", err)
	}
	byType := map[string]int{}
	for _, ev := range tr.Events {
		byType[ev.Type]++
	}
	if byType["insert"] != 3 || byType["delete"] != 1 {
		t.Fatalf("/debug/trace events wrong: %v", byType)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace?format=chrome: status %d", rec.Code)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace: bad JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

// TestPprofEndpoint checks that net/http/pprof is routed on the stats
// mux (the index page lists the standard profiles).
func TestPprofEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	rec := httptest.NewRecorder()
	s.statsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/: status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%.200s", body)
	}
}

// TestGracefulDegradation pins the acceptance scenario end to end: a
// reader parked in its critical section stalls the grace period a
// two-child DEL needs; the bounded DEL still takes effect and returns
// within its deadline; the stall detector flips the server degraded
// (healthz 503 + Retry-After, SET/DEL shed on both faces) while reads
// keep serving on both faces; and releasing the reader recovers it.
func TestGracefulDegradation(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.stallTimeout = 10 * time.Millisecond
	cfg.opTimeout = 300 * time.Millisecond
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	mux := s.statsMux()

	// Healthy baseline.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz: status %d\n%s", rec.Code, rec.Body)
	}

	// A root with two children: deleting it takes the grace-period path
	// (paper line 74).
	s.exec(h, "SET 2 two")
	s.exec(h, "SET 1 one")
	s.exec(h, "SET 3 three")

	// Park a reader inside its read-side critical section.
	pr := s.store.(*treeStore).dom.Register()
	defer pr.Unregister()
	pr.ReadLock()
	parked := true
	defer func() {
		if parked {
			pr.ReadUnlock()
		}
	}()

	// The bounded DEL: its grace-period wait must hit the deadline, yet
	// the delete has linearized — OK, and the key is gone.
	start := time.Now()
	if got, _ := s.exec(h, "DEL 2"); got != "OK" {
		t.Fatalf("DEL 2 under a parked reader = %q, want OK", got)
	}
	if waited := time.Since(start); waited > 4*cfg.opTimeout {
		t.Fatalf("bounded DEL took %v, deadline was %v", waited, cfg.opTimeout)
	}
	if got, _ := s.exec(h, "GET 2"); got != "NOT_FOUND" {
		t.Fatalf("GET 2 after timed-out DEL = %q, want NOT_FOUND", got)
	}
	if s.gpTimeouts.Load() == 0 {
		t.Fatal("the bounded DEL did not count a grace-period timeout")
	}

	// Degraded: healthz 503 with Retry-After and a reason.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz: status %d\n%s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded /healthz has no Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "stalled") {
		t.Fatalf("degraded /healthz names no stall:\n%s", rec.Body)
	}

	// Writes shed on both faces; reads serve on both faces.
	if got, _ := s.exec(h, "SET 7 seven"); !strings.HasPrefix(got, "BUSY") {
		t.Fatalf("degraded SET = %q, want BUSY…", got)
	}
	if got, _ := s.exec(h, "GET 1"); got != "VALUE one" {
		t.Fatalf("degraded GET = %q, want VALUE one", got)
	}
	// Scans are reads too: both faces keep serving them while degraded.
	if got, _ := s.exec(h, "SCAN 0 10 10"); !strings.HasSuffix(got, "END 2") {
		t.Fatalf("degraded SCAN = %q, want …END 2", got)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/kv?from=0&to=10", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"count": 2`) {
		t.Fatalf("degraded GET /kv scan: status %d body %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("PUT", "/kv/8", strings.NewReader("eight")))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("degraded PUT /kv/8: status %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/kv/1", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "one" {
		t.Fatalf("degraded GET /kv/1: status %d body %q", rec.Code, rec.Body.String())
	}
	if s.shedWrites.Load() < 2 {
		t.Fatalf("shed_writes = %d, want ≥ 2", s.shedWrites.Load())
	}
	if s.stallReports.Load() == 0 {
		t.Fatal("the stall handler never fired")
	}

	// Release the reader: the grace period completes and the server
	// recovers.
	pr.ReadUnlock()
	parked = false
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after the reader unparked:\n%s", rec.Body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got, _ := s.exec(h, "SET 7 seven"); got != "OK" {
		t.Fatalf("SET after recovery = %q, want OK", got)
	}
	if got, _ := s.exec(h, "GET 7"); got != "VALUE seven" {
		t.Fatalf("GET after recovery = %q", got)
	}
}

// TestKVEndpoint covers the HTTP face of the store in its healthy
// paths: PUT create/conflict, GET hit/miss, DELETE hit/miss, bad keys,
// bad methods.
func TestKVEndpoint(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	mux := s.statsMux()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
			mux.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
			return rec
		}
		mux.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec
	}
	if rec := do("PUT", "/kv/5", "five"); rec.Code != http.StatusCreated {
		t.Fatalf("PUT /kv/5: status %d", rec.Code)
	}
	if rec := do("PUT", "/kv/5", "again"); rec.Code != http.StatusConflict {
		t.Fatalf("second PUT /kv/5: status %d", rec.Code)
	}
	if rec := do("GET", "/kv/5", ""); rec.Code != http.StatusOK || rec.Body.String() != "five" {
		t.Fatalf("GET /kv/5: status %d body %q", rec.Code, rec.Body.String())
	}
	if rec := do("GET", "/kv/6", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /kv/6: status %d", rec.Code)
	}
	if rec := do("DELETE", "/kv/5", ""); rec.Code != http.StatusOK {
		t.Fatalf("DELETE /kv/5: status %d", rec.Code)
	}
	if rec := do("DELETE", "/kv/5", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("second DELETE /kv/5: status %d", rec.Code)
	}
	if rec := do("GET", "/kv/notanumber", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /kv/notanumber: status %d", rec.Code)
	}
	if rec := do("PATCH", "/kv/5", "x"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH /kv/5: status %d", rec.Code)
	}
}

// TestServerEndToEndSharded runs the full demo — listener, concurrent
// TCP clients, reply verification, invariant check — against the
// forest backend: same protocol, same replies, keys spread across
// independently reclaimed shards.
func TestServerEndToEndSharded(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 4
	if err := run("127.0.0.1:0", "127.0.0.1:0", false, false, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMetrics checks the forest server's /metrics document: the
// "tree" section is the cross-shard fold, and the per-shard breakdowns
// ("shards", "reclaimers") are present with one entry per shard.
func TestShardedMetrics(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 4
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	const n = 32
	for k := 0; k < n; k++ {
		if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
			t.Fatalf("SET %d = %q", k, got)
		}
	}

	rec := httptest.NewRecorder()
	s.statsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/metrics: bad JSON: %v", err)
	}
	srvVars := m["server"].(map[string]any)
	if srvVars["shards"].(float64) != 4 || srvVars["keys"].(float64) != n {
		t.Fatalf("/metrics server section wrong: %v", m["server"])
	}
	tree := m["tree"].(map[string]any)
	if tree["inserts"].(float64) != n {
		t.Fatalf("/metrics tree fold wrong: %v", m["tree"])
	}
	shards, ok := m["shards"].([]any)
	if !ok || len(shards) != 4 {
		t.Fatalf("/metrics shards section wrong: %v", m["shards"])
	}
	var perShard float64
	for _, sh := range shards {
		perShard += sh.(map[string]any)["inserts"].(float64)
	}
	if perShard != n {
		t.Fatalf("per-shard inserts sum to %v, want %d", perShard, n)
	}
	if recs, ok := m["reclaimers"].([]any); !ok || len(recs) != 4 {
		t.Fatalf("/metrics reclaimers section wrong: %v", m["reclaimers"])
	}
}

// TestShardedDegradationAggregates pins the forest health policy: a
// reader parked in ONE shard's critical section flips the whole server
// degraded (the router may send any write to the sick shard), while
// the sibling shards' grace periods stay live — the isolation the
// sharding exists to provide — and reads keep serving throughout.
func TestShardedDegradationAggregates(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 4
	cfg.stallTimeout = 10 * time.Millisecond
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	mux := s.statsMux()
	f := s.store.(*forestStore).f

	s.exec(h, "SET 1 one")

	// Park a reader in shard 3 and stall a grace period behind it.
	pr := f.Domain(3).Register()
	defer pr.Unregister()
	pr.ReadLock()
	parked := true
	defer func() {
		if parked {
			pr.ReadUnlock()
		}
	}()
	syncDone := make(chan struct{})
	go func() {
		defer close(syncDone)
		f.Domain(3).Synchronize() // blocks until the reader unparks
	}()

	// The stall detector fires; the aggregated probe degrades /healthz.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusServiceUnavailable {
			if !strings.Contains(rec.Body.String(), "stalled") {
				t.Fatalf("degraded /healthz names no stall:\n%s", rec.Body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("one stalled shard never degraded /healthz")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Sibling shards stay live: their grace periods complete promptly
	// while shard 3 is stuck. Reads serve regardless.
	for i := 0; i < 3; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			f.Domain(i).Synchronize()
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("shard %d's grace period hung behind shard 3's stall", i)
		}
	}
	if got, _ := s.exec(h, "GET 1"); got != "VALUE one" {
		t.Fatalf("degraded GET = %q, want VALUE one", got)
	}
	if got, _ := s.exec(h, "SET 7 seven"); !strings.HasPrefix(got, "BUSY") {
		t.Fatalf("degraded SET = %q, want BUSY…", got)
	}
	if s.stallReports.Load() == 0 {
		t.Fatal("the per-shard stall handler never fired")
	}

	// Unpark: the stalled grace period completes and the server recovers.
	pr.ReadUnlock()
	parked = false
	<-syncDone
	deadline = time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after the reader unparked:\n%s", rec.Body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got, _ := s.exec(h, "SET 7 seven"); got != "OK" {
		t.Fatalf("SET after recovery = %q, want OK", got)
	}
}

// TestScanTCP pins the SCAN verb's reply shape: KEY lines in ascending
// order over the half-open window, the n cap, the empty window, and the
// (tcp, scan) latency series.
func TestScanTCP(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	for _, k := range []int{7, 1, 5, 3, 10} {
		if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
			t.Fatalf("SET %d = %q", k, got)
		}
	}
	if got, _ := s.exec(h, "SCAN 0 10 100"); got != "KEY 1 v1\nKEY 3 v3\nKEY 5 v5\nKEY 7 v7\nEND 4" {
		t.Fatalf("SCAN 0 10 100 = %q", got)
	}
	if got, _ := s.exec(h, "SCAN 0 11 2"); got != "KEY 1 v1\nKEY 3 v3\nEND 2" {
		t.Fatalf("capped SCAN = %q", got)
	}
	if got, _ := s.exec(h, "SCAN 100 200 5"); got != "END 0" {
		t.Fatalf("empty SCAN = %q", got)
	}
	if _, ok := s.lat.summaries()["tcp_scan"]; !ok {
		t.Fatal("SCAN traffic left no tcp_scan latency series")
	}
}

// TestScanHTTP covers GET /kv?from=&to=&limit=: the JSON document shape,
// ascending order, defaults, the truncation flag, parameter validation,
// the method gate, and the (http, scan) latency series.
func TestScanHTTP(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	for _, k := range []int{7, 1, 5, 3, 10} {
		s.exec(h, fmt.Sprintf("SET %d v%d", k, k))
	}
	mux := s.statsMux()
	type scanDoc struct {
		Count       int    `json:"count"`
		Truncated   bool   `json:"truncated"`
		Consistency string `json:"consistency"`
		Pairs       []struct {
			Key   int64  `json:"key"`
			Value string `json:"value"`
		} `json:"pairs"`
	}
	scan := func(query string) scanDoc {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/kv"+query, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /kv%s: status %d\n%s", query, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Fatalf("GET /kv%s: Content-Type %q", query, ct)
		}
		var doc scanDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("GET /kv%s: bad JSON: %v", query, err)
		}
		return doc
	}

	doc := scan("?from=1&to=10")
	if doc.Count != 4 || doc.Truncated || doc.Consistency != "weakly_consistent" || len(doc.Pairs) != 4 {
		t.Fatalf("scan [1,10): %+v", doc)
	}
	for i, want := range []int64{1, 3, 5, 7} {
		if doc.Pairs[i].Key != want || doc.Pairs[i].Value != fmt.Sprintf("v%d", want) {
			t.Fatalf("scan [1,10) pair %d = %+v, want key %d", i, doc.Pairs[i], want)
		}
	}
	if doc = scan(""); doc.Count != 5 || doc.Truncated {
		t.Fatalf("unbounded scan: %+v", doc)
	}
	if doc = scan("?limit=2"); doc.Count != 2 || !doc.Truncated || doc.Pairs[1].Key != 3 {
		t.Fatalf("truncated scan: %+v", doc)
	}
	if doc = scan("?from=100&to=200"); doc.Count != 0 || doc.Pairs == nil || len(doc.Pairs) != 0 {
		t.Fatalf("empty scan: %+v", doc)
	}

	for _, q := range []string{"?from=x", "?to=x", "?limit=x", "?limit=0", "?limit=-1"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/kv"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET /kv%s: status %d, want 400", q, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/kv?from=0", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /kv: status %d, want 405", rec.Code)
	}
	if _, ok := s.lat.summaries()["http_scan"]; !ok {
		t.Fatal("scan traffic left no http_scan latency series")
	}
}

// TestScanSharded pins the forest backend's global order: keys hashed
// across 4 shards come back as one ascending stream on both faces.
func TestScanSharded(t *testing.T) {
	cfg := defaultKVConfig()
	cfg.shards = 4
	s := newServer(cfg)
	h := s.store.NewHandle()
	defer h.Close()
	const n = 32
	for k := 0; k < n; k++ {
		if got, _ := s.exec(h, fmt.Sprintf("SET %d v%d", k, k)); got != "OK" {
			t.Fatalf("SET %d = %q", k, got)
		}
	}
	got, _ := s.exec(h, fmt.Sprintf("SCAN 0 %d %d", n, n))
	lines := strings.Split(got, "\n")
	if len(lines) != n+1 || lines[n] != fmt.Sprintf("END %d", n) {
		t.Fatalf("sharded SCAN: %d lines, last %q", len(lines), lines[len(lines)-1])
	}
	for k := 0; k < n; k++ {
		if want := fmt.Sprintf("KEY %d v%d", k, k); lines[k] != want {
			t.Fatalf("sharded SCAN line %d = %q, want %q", k, lines[k], want)
		}
	}
}

func TestValuesWithSpaces(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	if got, _ := s.exec(h, "SET 9 a b c"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	got, _ := s.exec(h, "GET 9")
	if !strings.HasPrefix(got, "VALUE ") || got != "VALUE a b c" {
		t.Fatalf("GET 9 = %q", got)
	}
}
