package main

import (
	"strings"
	"testing"

	citrus "github.com/go-citrus/citrus"
)

func newTestServer() (*server, *citrus.Handle[int64, string]) {
	s := &server{tree: citrus.New[int64, string]()}
	return s, s.tree.NewHandle()
}

func TestExecProtocol(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	steps := []struct {
		cmd  string
		want string
	}{
		{"SET 1 hello world", "OK"},
		{"SET 1 other", "EXISTS"},
		{"GET 1", "VALUE hello world"},
		{"GET 2", "NOT_FOUND"},
		{"DEL 2", "NOT_FOUND"},
		{"DEL 1", "OK"},
		{"GET 1", "NOT_FOUND"},
		{"LEN", "LEN 0"},
		{"set 5 lowercase-verb", "OK"},
		{"len", "LEN 1"},
		{"", "ERR empty command"},
		{"SET", "ERR usage: SET <key> <value>"},
		{"SET x y", "ERR usage: SET <key> <value>"},
		{"GET notanumber", "ERR usage: GET <key>"},
		{"DEL", "ERR usage: DEL <key>"},
		{"BOGUS 1", "ERR unknown command BOGUS"},
	}
	for _, st := range steps {
		got, quit := s.exec(h, st.cmd)
		if got != st.want || quit {
			t.Fatalf("exec(%q) = (%q, quit=%v), want (%q, false)", st.cmd, got, quit, st.want)
		}
	}
	if got, quit := s.exec(h, "QUIT"); got != "BYE" || !quit {
		t.Fatalf("QUIT = (%q, %v)", got, quit)
	}
}

func TestServerEndToEnd(t *testing.T) {
	// The full demo: listener, concurrent TCP clients, verification of
	// every reply, invariant check — on an ephemeral port.
	if err := run("127.0.0.1:0", false); err != nil {
		t.Fatal(err)
	}
}

func TestValuesWithSpaces(t *testing.T) {
	s, h := newTestServer()
	defer h.Close()
	if got, _ := s.exec(h, "SET 9 a b c"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	got, _ := s.exec(h, "GET 9")
	if !strings.HasPrefix(got, "VALUE ") || got != "VALUE a b c" {
		t.Fatalf("GET 9 = %q", got)
	}
}
