// kvserver: a TCP key-value store backed by the Citrus tree — or, with
// -shards N, by a citrus.Forest that hash-partitions the key space
// across N independent trees, each with its own RCU domain and
// reclaimer. Sharding bounds the blast radius of a stalled reader: a
// reader stuck in one shard's critical section degrades that shard's
// reclamation while the other shards' grace periods keep completing,
// so /healthz and the write-shedding policy (which aggregate across
// shards) describe the whole forest honestly.
//
// The server speaks a line protocol on 127.0.0.1:7170 (configurable):
//
//	SET <key> <value>   → OK | EXISTS
//	GET <key>           → VALUE <value> | NOT_FOUND
//	DEL <key>           → OK | NOT_FOUND
//	SCAN <lo> <hi> <n>  → KEY <key> <value> per pair with lo ≤ key < hi,
//	                      ascending, at most n (capped at 1000), then
//	                      END <count>; weakly consistent (see below)
//	LEN                 → LEN <n>        (quiescent use only)
//	QUIT                → BYE
//
// Every connection is served by its own goroutine with its own tree
// handle, so GETs from all connections proceed wait-free while SETs and
// DELs from different connections update the tree concurrently — the
// exact service shape (read-mostly, point lookups) that Citrus targets.
//
// Alongside the TCP port the server exposes the library's runtime
// observability layer — and an HTTP face of the store — over HTTP
// (-http, default 127.0.0.1:7171):
//
//	/kv/{key}      → GET / PUT / DELETE the key over HTTP, with
//	                 per-request deadlines (-optimeout); writes are shed
//	                 with 503 + Retry-After while the server is degraded
//	/kv?from=&to=&limit=
//	               → GET range scan over [from, to): a JSON document of
//	                 pairs in ascending key order, at most limit
//	                 (default 100, capped at 1000, "truncated" flags the
//	                 cut). The scan is weakly consistent — keys present
//	                 throughout appear exactly once, in order; keys
//	                 updated concurrently may or may not appear — and,
//	                 like every read, it serves while degraded
//	/healthz       → 200 while healthy, 503 with a JSON reason list
//	                 while degraded (stalled grace period, reclaimer
//	                 backlog at its watermark)
//	/metrics       → JSON snapshot: tree op counters, RCU grace-period
//	                 stats (count + wait histogram), reclaimer queue
//	                 stats, server counters
//	/debug/citrus  → the same plus human-oriented derived figures
//	                 (retry rates, grace-period p50/p99/mean)
//	/debug/vars    → standard expvar, including the same snapshot under
//	                 the "citrus" key (see citrusstat.Publish)
//	/debug/trace   → citrustrace flight-recorder dump when tracing is on
//	                 (-trace); ?format=chrome serves the Chrome
//	                 trace_event form for chrome://tracing / Perfetto
//	/debug/pprof/  → standard net/http/pprof: CPU and heap profiles,
//	                 goroutine dumps (labeled with op=SET/GET/DEL per
//	                 in-flight command), mutex and block profiles when
//	                 enabled via -mutexprofilefraction/-blockprofilerate,
//	                 and the runtime execution tracer (/debug/pprof/trace),
//	                 in which RCU grace periods appear as
//	                 "rcu.synchronize" regions
//
// Graceful degradation: the RCU stall detector (-stall) watches every
// grace period, and the tree's reclaimer runs with watermarks, so a
// reader stuck in a critical section turns into a 503-shedding,
// read-only-but-alive server instead of a hung one: GETs — wait-free by
// construction — keep working, SET/DEL are shed (TCP "BUSY", HTTP 503 +
// Retry-After), /healthz flips to 503, and DELs that do run bound their
// grace-period wait with -optimeout, finishing cleanup in the
// background on expiry. With -serve, SIGTERM/SIGINT drains: the
// listeners close, in-flight connections get -drain to finish, and the
// reclaimer flushes its queue before exit.
//
// Run `go run ./examples/kvserver` to start the server, load it with a
// built-in concurrent demo client, print stats, and exit. Use -serve to
// keep it running for external clients (`nc 127.0.0.1 7170`).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
	"github.com/go-citrus/citrus/internal/wal"
	"github.com/go-citrus/citrus/rcu"
)

// kvConfig carries the robustness knobs from flags into the server.
type kvConfig struct {
	shards       int           // forest shard count; 1 = single tree
	flavor       string        // RCU flavor name: scalable (default), classic, or ebr
	opTimeout    time.Duration // per-write grace-period deadline (0 = unbounded)
	stallTimeout time.Duration // RCU stall-detector threshold (0 = off)
	recHigh      int           // reclaimer high watermark (expedited drain), per shard
	recCap       int           // reclaimer hard cap (backpressure, then shed), per shard
	drainTimeout time.Duration // how long shutdown waits for open connections

	// Durability (empty walDir = in-memory only, the pre-WAL behavior).
	walDir    string // WAL + snapshot directory; enables crash durability
	fsync     string // WAL fsync policy: always, group (default), or none
	snapEvery int    // fuzzy snapshot every N logged writes (0 = never)

	// demo runs the built-in load/verify pass in run() before serving.
	// The crash-torture harness starts the server with -demo=false: the
	// demo's 1600 writes would need their own durability bookkeeping,
	// and the harness brings its own oracle-tracked workload.
	demo bool
}

// flavorName normalizes the configured flavor for display and metric
// labels: a zero-value config (tests build kvConfig literals) means the
// default scalable domain.
func (c kvConfig) flavorName() string {
	if c.flavor == "" {
		return "scalable"
	}
	return c.flavor
}

// maxScanResults caps every scan's result count, whatever the client
// asked for. Scans traverse inside RCU read-side critical sections
// (one per shard for the forest) and buffer their results before a
// byte goes to the client, so the cap bounds both the read-side dwell
// — long critical sections delay grace periods and back up the
// reclaimer — and the per-request memory. Clients page with the last
// key returned.
const maxScanResults = 1000

func defaultKVConfig() kvConfig {
	return kvConfig{
		shards:       1,
		flavor:       "scalable",
		opTimeout:    2 * time.Second,
		stallTimeout: 250 * time.Millisecond,
		recHigh:      1024,
		recCap:       8192,
		drainTimeout: 5 * time.Second,
		fsync:        "group",
		snapEvery:    10000,
		demo:         true,
	}
}

type server struct {
	store store
	cfg   kvConfig
	ops   atomic.Int64
	conns atomic.Int64

	// Degradation accounting, surfaced in /metrics and /healthz.
	shedWrites   atomic.Int64 // SET/DEL rejected while degraded
	gpTimeouts   atomic.Int64 // DELs whose grace-period wait hit the deadline
	stallReports atomic.Int64 // stall-detector reports logged

	// Request latency histograms per (face, op), surfaced as summaries
	// in /metrics and as cumulative histograms in /metrics.prom.
	lat reqLatencies
}

// newServer builds a server, panicking on construction errors — the
// shape the in-memory-only tests use. Durability errors (bad fsync
// name, corrupt WAL/snapshot) are real runtime failures, so any caller
// that sets walDir should use buildServer and handle the error.
func newServer(cfg kvConfig) *server {
	s, err := buildServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func buildServer(cfg kvConfig) (*server, error) {
	s := &server{cfg: cfg}
	onStall := func(shard int, r rcu.StallReport) {
		s.stallReports.Add(1)
		if cfg.shards > 1 {
			log.Printf("kvserver: shard %d: %v", shard, r)
		} else {
			log.Printf("kvserver: %v", r)
		}
	}
	if cfg.shards > 1 {
		s.store = newForestStore(cfg, onStall)
	} else {
		s.store = newTreeStore(cfg, onStall)
	}
	if cfg.walDir != "" {
		ds, err := newDurableStore(s.store, cfg)
		if err != nil {
			s.store.Close()
			return nil, err
		}
		s.store = ds
	}
	return s, nil
}

// degraded reports whether the server is shedding writes, with a
// human-readable reason per trigger. Two triggers, matching the two
// failure modes docs/RCU.md's degradation matrix describes: a
// grace-period wait stalled past the detector threshold (a reader stuck
// in its critical section), or a reclaimer's queue at/above its high
// watermark (retired nodes accumulating faster than grace periods
// retire them). With -shards both probes aggregate across every shard —
// the router is hash-based, so any write may land on the sick shard.
func (s *server) degraded() (bool, []string) {
	var reasons []string
	if n := s.store.ActiveStalls(); n > 0 {
		reasons = append(reasons, fmt.Sprintf("%d grace-period wait(s) stalled past %v", n, s.cfg.stallTimeout))
	}
	if d := s.store.MaxQueueDepth(); s.cfg.recHigh > 0 && d >= int64(s.cfg.recHigh) {
		reasons = append(reasons, fmt.Sprintf("reclaimer backlog %d at high watermark %d", d, s.cfg.recHigh))
	}
	return len(reasons) > 0, reasons
}

// writeCtx returns the context bounding one write's grace-period wait.
func (s *server) writeCtx() (context.Context, context.CancelFunc) {
	if s.cfg.opTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), s.cfg.opTimeout)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7170", "listen address")
	httpAddr := flag.String("http", "127.0.0.1:7171", "HTTP observability address (/metrics, /debug/citrus, /debug/vars, /debug/trace, /debug/pprof); empty disables")
	serve := flag.Bool("serve", false, "keep serving after the demo instead of exiting")
	traceOn := flag.Bool("trace", false, "enable the citrustrace flight recorder at startup (dump at /debug/trace)")
	mutexFrac := flag.Int("mutexprofilefraction", 0, "runtime.SetMutexProfileFraction: sample 1/n mutex contention events (0 disables)")
	blockRate := flag.Int("blockprofilerate", 0, "runtime.SetBlockProfileRate: sample blocking events ≥ n ns (0 disables)")
	def := defaultKVConfig()
	shards := flag.Int("shards", def.shards, "partition the key space across this many independently reclaimed Citrus trees (citrus.Forest); 1 = single tree")
	flavor := flag.String("flavor", def.flavor, "RCU reclamation flavor backing every tree: scalable (per-reader counter+flag), classic (single shared counter), or ebr (epoch-based)")
	opTimeout := flag.Duration("optimeout", def.opTimeout, "per-write grace-period deadline; expired DELs finish cleanup in the background (0 = unbounded)")
	stall := flag.Duration("stall", def.stallTimeout, "RCU stall-detector threshold; stalled grace periods are logged and flip /healthz to degraded (0 disables)")
	recHigh := flag.Int("reclaim-high", def.recHigh, "reclaimer high watermark: queue depth that triggers an expedited drain and write shedding")
	recCap := flag.Int("reclaim-cap", def.recCap, "reclaimer hard cap: queue depth past which retired nodes are shed to the GC (0 = unbounded)")
	drain := flag.Duration("drain", def.drainTimeout, "how long SIGTERM/SIGINT shutdown waits for open connections before exiting")
	walDir := flag.String("wal-dir", def.walDir, "write-ahead log + snapshot directory: writes are logged and recovered on boot (empty = in-memory only)")
	fsync := flag.String("fsync", def.fsync, "WAL fsync policy: always (fsync per write), group (batched fsync, default), none (NOT crash-durable; torture negative control)")
	snapEvery := flag.Int("snapshot-every", def.snapEvery, "take a fuzzy snapshot and truncate the WAL every N logged writes (0 = never)")
	demo := flag.Bool("demo", def.demo, "run the built-in demo load before serving (-demo=false for externally driven servers)")
	flag.Parse()
	runtime.SetMutexProfileFraction(*mutexFrac)
	runtime.SetBlockProfileRate(*blockRate)
	if *shards < 1 {
		log.Fatalf("-shards must be at least 1, got %d", *shards)
	}
	if _, err := newRCUFlavor(*flavor); err != nil {
		log.Fatalf("-flavor: %v", err)
	}
	if _, err := wal.ParsePolicy(*fsync); err != nil {
		log.Fatalf("-fsync: %v", err)
	}
	cfg := kvConfig{
		shards:       *shards,
		flavor:       *flavor,
		opTimeout:    *opTimeout,
		stallTimeout: *stall,
		recHigh:      *recHigh,
		recCap:       *recCap,
		drainTimeout: *drain,
		walDir:       *walDir,
		fsync:        *fsync,
		snapEvery:    *snapEvery,
		demo:         *demo,
	}
	if err := run(*addr, *httpAddr, *serve, *traceOn, cfg); err != nil {
		log.Fatal(err)
	}
}

// runInfo tells a runNotify caller where the listeners actually bound
// ("127.0.0.1:0" in, real ports out) once the server is accepting.
type runInfo struct {
	tcpAddr  string
	httpAddr string // empty when the HTTP face is disabled
}

func run(addr, httpAddr string, keepServing, traceOn bool, cfg kvConfig) error {
	return runNotify(addr, httpAddr, keepServing, traceOn, cfg, nil)
}

// runNotify is run with a readiness signal: once both listeners are
// accepting, their bound addresses are sent on ready (if non-nil).
// Tests use it to run the full server loop — signal handling and drain
// ordering included — against ephemeral ports.
func runNotify(addr, httpAddr string, keepServing, traceOn bool, cfg kvConfig, ready chan<- runInfo) error {
	srv, err := buildServer(cfg)
	if err != nil {
		return err
	}
	if traceOn {
		srv.store.EnableTracing()
		if cfg.shards > 1 {
			log.Printf("flight recorder enabled on every shard (merged dump at /debug/trace, events tagged by shard)")
		} else {
			log.Printf("flight recorder enabled (dump at /debug/trace)")
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if cfg.shards > 1 {
		log.Printf("kvserver listening on %s (%d shards, each with its own RCU domain and reclaimer)", ln.Addr(), cfg.shards)
	} else {
		log.Printf("kvserver listening on %s", ln.Addr())
	}

	boundHTTP := ""
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("http listener: %w", err)
		}
		defer hln.Close()
		boundHTTP = hln.Addr().String()
		citrusstat.Publish("citrus", func() any { return srv.metrics() })
		go http.Serve(hln, srv.statsMux()) //nolint:errcheck // closed with the listener
		log.Printf("stats on http://%s/metrics (also /debug/citrus, /debug/vars, /debug/trace, /debug/pprof)", hln.Addr())
	}

	// Open connections are tracked so the drain path can force-close
	// stragglers and then WAIT for their handlers: the WAL may only be
	// flushed and closed after every goroutine that could append to it
	// has returned (see the keepServing shutdown below).
	var wg sync.WaitGroup
	var connMu sync.Mutex
	openConns := make(map[net.Conn]struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			connMu.Lock()
			openConns[conn] = struct{}{}
			connMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					connMu.Lock()
					delete(openConns, conn)
					connMu.Unlock()
				}()
				srv.handle(conn)
			}()
		}
	}()

	if ready != nil {
		ready <- runInfo{tcpAddr: ln.Addr().String(), httpAddr: boundHTTP}
	}

	if cfg.demo {
		// Built-in demo load: concurrent clients over real TCP connections.
		if err := demo(ln.Addr().String()); err != nil {
			ln.Close()
			wg.Wait()
			return fmt.Errorf("demo client: %w", err)
		}
		log.Printf("demo done: %d ops served, %d keys resident", srv.ops.Load(), srv.store.Len())
		if err := srv.store.CheckInvariants(); err != nil {
			return fmt.Errorf("tree invariants: %w", err)
		}
		log.Printf("tree invariants: OK")
	}

	if keepServing {
		log.Printf("serving until interrupted (try: printf 'SET 1 hello\\nGET 1\\nQUIT\\n' | nc %s)", addr)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		sig := <-sigc
		signal.Stop(sigc)
		log.Printf("%v: draining (no new connections, up to %v for open ones)", sig, cfg.drainTimeout)
		ln.Close()
		drained := make(chan struct{})
		go func() {
			wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(cfg.drainTimeout):
			// Force-close the stragglers' sockets, then STILL wait for
			// their handlers to return. The old behavior — "abandoning"
			// the connections and closing the store under them — raced
			// live handlers against store shutdown; with a WAL attached
			// it could close the log while a handler was mid-append and
			// exit before acknowledged bytes were flushed. Every handler
			// unblocks promptly once its socket is closed (reads fail)
			// and its bounded waits expire (-optimeout, fsync).
			connMu.Lock()
			n := len(openConns)
			for c := range openConns {
				c.Close()
			}
			connMu.Unlock()
			log.Printf("drain timeout: force-closed %d open connection(s)", n)
			wg.Wait()
		}
		// Handlers are done; now the store — and the WAL behind it, when
		// -wal-dir is set — can flush, fsync, and close in order.
		srv.store.Close()
		log.Printf("drained: %d ops served", srv.ops.Load())
		return nil
	}
	ln.Close()
	wg.Wait()
	srv.store.Close()
	return nil
}

// metrics is the machine-oriented snapshot served at /metrics and
// published through expvar. Everything in it comes from the library's
// native stats layer; the server adds only its own request counters.
// With -shards the store contributes the forest fold under "tree"/"rcu"
// plus per-shard breakdowns under "shards" and "reclaimers".
func (s *server) metrics() map[string]any {
	doc := map[string]any{
		"server": map[string]int64{
			"ops":           s.ops.Load(),
			"conns":         s.conns.Load(),
			"keys":          int64(s.store.Len()),
			"shards":        int64(s.cfg.shards),
			"shed_writes":   s.shedWrites.Load(),
			"gp_timeouts":   s.gpTimeouts.Load(),
			"stall_reports": s.stallReports.Load(),
		},
		"flavor":          s.cfg.flavorName(),
		"request_latency": s.lat.summaries(),
	}
	for k, v := range s.store.Metrics() {
		doc[k] = v
	}
	return doc
}

// debugCitrus adds human-oriented derived figures (rates, latency
// summary) on top of the raw snapshot.
func (s *server) debugCitrus() map[string]any {
	ts := s.store.Stats()
	rs := rcu.Stats{}
	if ts.RCU != nil {
		rs = *ts.RCU // the forest fold merges every shard's domain here
	}
	updates := ts.Inserts + ts.InsertExisting + ts.Deletes + ts.DeleteMisses
	rate := func(n int64) float64 {
		if updates == 0 {
			return 0
		}
		return float64(n) / float64(updates)
	}
	return map[string]any{
		"snapshot": s.metrics(),
		"derived": map[string]any{
			"insert_retry_rate":  rate(ts.InsertRetries),
			"delete_retry_rate":  rate(ts.DeleteRetries),
			"grace_period_mean":  rs.SyncWait.Mean().String(),
			"grace_period_p50":   rs.SyncWait.Percentile(50).String(),
			"grace_period_p99":   rs.SyncWait.Percentile(99).String(),
			"grace_period_note":  "one grace period per two-child delete (paper line 74)",
			"two_child_deletes":  ts.TwoChildDeletes,
			"grace_periods":      rs.Synchronizes,
			"sync_wait_summary":  rs.SyncWait.Summary(),
			"reader_high_water":  rs.ReaderHighWater,
			"registered_readers": rs.Readers,
		},
	}
}

// statsMux serves the observability endpoints.
func (s *server) statsMux() *http.ServeMux {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // best-effort over HTTP
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/kv/", s.serveKV)
	mux.HandleFunc("/kv", s.serveScan) // exact match: the query-driven range scan
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.metrics())
	})
	mux.HandleFunc("/metrics.prom", s.servePromMetrics)
	mux.HandleFunc("/debug/citrus", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.debugCitrus())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", s.serveTrace)
	// net/http/pprof registers on DefaultServeMux; this server uses its
	// own mux, so route the handlers explicitly. /debug/pprof/trace is
	// the runtime execution tracer — grace-period waits show up there as
	// "rcu.synchronize" regions (go tool trace, "User-defined regions").
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// serveHealthz is the load-balancer probe: 200 while healthy, 503 with
// the reason list while degraded. A degraded server still serves reads
// (wait-free by construction), so orchestrators that honor Retry-After
// can keep read traffic flowing while routing writes elsewhere.
func (s *server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	deg, reasons := s.degraded()
	doc := map[string]any{
		"status":              "ok",
		"reasons":             reasons,
		"shards":              s.cfg.shards,
		"active_stalls":       s.store.ActiveStalls(),
		"reclaim_queue_depth": s.store.QueueDepth(),
		"shed_writes":         s.shedWrites.Load(),
		"gp_timeouts":         s.gpTimeouts.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	if deg {
		doc["status"] = "degraded"
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort over HTTP
}

// serveKV is the HTTP face of the store: GET/PUT/DELETE on /kv/{key}.
// Reads always serve; writes are shed with 503 + Retry-After while the
// server is degraded, and DELETE bounds its grace-period wait with the
// per-request deadline (a DELETE that hits the deadline HAS deleted the
// key — the remaining unlink work finishes in the background — so it
// still answers 200, with X-Citrus-GP-Timeout set).
func (s *server) serveKV(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/kv/"), 10, 64)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return
	}
	h := s.store.NewHandle()
	defer h.Close()
	s.ops.Add(1)
	defer s.lat.record("http", r.Method, time.Now())
	shed := func() bool {
		deg, reasons := s.degraded()
		if !deg {
			return false
		}
		s.shedWrites.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "degraded: "+strings.Join(reasons, "; "), http.StatusServiceUnavailable)
		return true
	}
	switch r.Method {
	case http.MethodGet:
		v, ok := h.Get(key)
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		io.WriteString(w, v) //nolint:errcheck // best-effort over HTTP
	case http.MethodPut, http.MethodPost:
		if shed() {
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !h.Insert(key, string(body)) {
			http.Error(w, "exists", http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if shed() {
			return
		}
		ctx, cancel := s.writeCtx()
		defer cancel()
		ok, err := h.DeleteCtx(ctx, key)
		switch {
		case err != nil && ok:
			// Deleted — the key is gone — but the grace-period wait hit
			// the deadline; unlink cleanup completes in the background.
			s.gpTimeouts.Add(1)
			w.Header().Set("X-Citrus-GP-Timeout", "1")
		case err != nil:
			http.Error(w, "deadline before delete took effect: "+err.Error(), http.StatusGatewayTimeout)
			return
		case !ok:
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveScan is the HTTP face of the range scan: GET /kv?from=&to=&limit=
// answers a JSON document of pairs with from ≤ key < to in ascending key
// order, at most limit of them (default 100, capped at maxScanResults;
// "truncated" reports whether the cap cut the scan short). Bounds
// default to the whole key space. Like every read it serves while the
// server is degraded, and it records its latency under the dedicated
// (http, scan) series so wide scans don't skew the point-GET histogram.
func (s *server) serveScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	bound := func(name string, def int64) (int64, error) {
		if v := q.Get(name); v != "" {
			return strconv.ParseInt(v, 10, 64)
		}
		return def, nil
	}
	from, err := bound("from", math.MinInt64)
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := bound("to", math.MaxInt64)
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 {
			http.Error(w, "bad limit: must be a positive integer", http.StatusBadRequest)
			return
		}
	}
	if limit > maxScanResults {
		limit = maxScanResults
	}

	h := s.store.NewHandle()
	defer h.Close()
	s.ops.Add(1)
	defer s.lat.record("http", "SCAN", time.Now())

	type pair struct {
		Key   int64  `json:"key"`
		Value string `json:"value"`
	}
	pairs := []pair{} // non-nil: an empty scan answers "pairs": []
	// The bounded scan asks for one pair past the limit purely to learn
	// whether the cap cut anything off; the forest backend buffers at
	// most limit+1 pairs per shard regardless of how wide [from, to) is.
	h.RangeScanLimit(from, to, limit+1, func(k int64, v string) bool {
		pairs = append(pairs, pair{k, v})
		return true
	})
	truncated := len(pairs) > limit
	if truncated {
		pairs = pairs[:limit]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{ //nolint:errcheck // best-effort over HTTP
		"count":       len(pairs),
		"truncated":   truncated,
		"consistency": "weakly_consistent",
		"pairs":       pairs,
	})
}

// serveTrace dumps the flight recorder: the native JSON form by
// default, the Chrome trace_event form with ?format=chrome. With
// -shards the dump merges every shard's rings onto one clock,
// time-ordered, each event tagged with its source shard (rendered as
// one process group per shard in the Chrome form).
func (s *server) serveTrace(w http.ResponseWriter, r *http.Request) {
	if !s.store.TracingEnabled() {
		http.Error(w, "tracing disabled (start kvserver with -trace)", http.StatusNotFound)
		return
	}
	tr := s.store.DumpTrace()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="citrus-trace.json"`)
		tr.WriteChromeTrace(w) //nolint:errcheck // best-effort over HTTP
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteJSON(w) //nolint:errcheck // best-effort over HTTP
}

// handle serves one connection with its own per-goroutine tree handle.
func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	s.conns.Add(1)
	h := s.store.NewHandle()
	defer h.Close()

	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for sc.Scan() {
		reply, quit := s.exec(h, sc.Text())
		fmt.Fprintln(out, reply)
		if quit {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// exec executes one protocol line. The goroutine carries an op=<verb>
// pprof label for the duration, so goroutine and CPU profiles break
// down by command type (go tool pprof -tags).
func (s *server) exec(h storeHandle, line string) (reply string, quit bool) {
	s.ops.Add(1)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	verb := strings.ToUpper(fields[0])
	start := time.Now()
	rpprof.Do(context.Background(), rpprof.Labels("op", verb), func(context.Context) {
		reply, quit = s.execVerb(h, verb, fields)
	})
	s.lat.record("tcp", verb, start)
	return reply, quit
}

func (s *server) execVerb(h storeHandle, verb string, fields []string) (reply string, quit bool) {
	parseKey := func() (int64, error) {
		if len(fields) < 2 {
			return 0, errors.New("missing key")
		}
		return strconv.ParseInt(fields[1], 10, 64)
	}
	// Writes are shed while degraded; reads always serve. BUSY tells the
	// client to back off and retry — the degradation is load- or
	// stall-induced and clears on its own (see /healthz for why).
	shed := func() (string, bool) {
		deg, _ := s.degraded()
		if deg {
			s.shedWrites.Add(1)
			return "BUSY degraded, retry later", true
		}
		return "", false
	}
	switch verb {
	case "SET":
		key, err := parseKey()
		if err != nil || len(fields) < 3 {
			return "ERR usage: SET <key> <value>", false
		}
		if reply, busy := shed(); busy {
			return reply, false
		}
		if h.Insert(key, strings.Join(fields[2:], " ")) {
			return "OK", false
		}
		return "EXISTS", false
	case "GET":
		key, err := parseKey()
		if err != nil {
			return "ERR usage: GET <key>", false
		}
		if v, ok := h.Get(key); ok {
			return "VALUE " + v, false
		}
		return "NOT_FOUND", false
	case "DEL":
		key, err := parseKey()
		if err != nil {
			return "ERR usage: DEL <key>", false
		}
		if reply, busy := shed(); busy {
			return reply, false
		}
		ctx, cancel := s.writeCtx()
		defer cancel()
		ok, derr := h.DeleteCtx(ctx, key)
		switch {
		case derr != nil && ok:
			// The delete took effect; only the grace-period wait timed
			// out, and cleanup finishes in the background. Still OK.
			s.gpTimeouts.Add(1)
			return "OK", false
		case derr != nil:
			return "TIMEOUT deadline before delete took effect", false
		case ok:
			return "OK", false
		}
		return "NOT_FOUND", false
	case "SCAN":
		// A read: never shed, like GET. The reply is multi-line — one KEY
		// line per pair, then END <count> — buffered fully before the
		// connection writer flushes it, so the read-side critical section
		// never waits on the network.
		usage := "ERR usage: SCAN <lo> <hi> <n>"
		if len(fields) != 4 {
			return usage, false
		}
		lo, err1 := strconv.ParseInt(fields[1], 10, 64)
		hi, err2 := strconv.ParseInt(fields[2], 10, 64)
		n, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil || n <= 0 {
			return usage, false
		}
		if n > maxScanResults {
			n = maxScanResults
		}
		var b strings.Builder
		count := 0
		h.RangeScanLimit(lo, hi, n, func(k int64, v string) bool {
			fmt.Fprintf(&b, "KEY %d %s\n", k, v)
			count++
			return true
		})
		fmt.Fprintf(&b, "END %d", count)
		return b.String(), false
	case "LEN":
		return fmt.Sprintf("LEN %d", s.store.Len()), false
	case "QUIT":
		return "BYE", true
	default:
		return "ERR unknown command " + fields[0], false
	}
}

// demo drives the server with concurrent clients and verifies replies.
func demo(addr string) error {
	const (
		clients    = 8
		keysPerCli = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs <- client(addr, c, keysPerCli)
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// client owns keys [c*1000, c*1000+n): sets them, reads them back,
// deletes the odd ones, and checks every reply.
func client(addr string, c, n int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	roundTrip := func(cmd, want string) error {
		if _, err := fmt.Fprintln(conn, cmd); err != nil {
			return err
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			return err
		}
		if got := strings.TrimSpace(line); got != want {
			return fmt.Errorf("%q: got %q, want %q", cmd, got, want)
		}
		return nil
	}
	base := c * 1000
	for k := base; k < base+n; k++ {
		if err := roundTrip(fmt.Sprintf("SET %d v%d", k, k), "OK"); err != nil {
			return err
		}
	}
	for k := base; k < base+n; k++ {
		if err := roundTrip(fmt.Sprintf("GET %d", k), fmt.Sprintf("VALUE v%d", k)); err != nil {
			return err
		}
	}
	// SCAN this client's own window: every key it set is still present
	// and no other client writes there, so the weakly consistent scan
	// must return exactly its n keys, ascending.
	if _, err := fmt.Fprintf(conn, "SCAN %d %d %d\n", base, base+n, n); err != nil {
		return err
	}
	prev := int64(base) - 1
	for seen := 0; ; seen++ {
		line, err := rd.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "END ") {
			if line != fmt.Sprintf("END %d", n) || seen != n {
				return fmt.Errorf("SCAN: %d KEY lines then %q, want %d", seen, line, n)
			}
			break
		}
		var k int64
		var v string
		if _, err := fmt.Sscanf(line, "KEY %d %s", &k, &v); err != nil {
			return fmt.Errorf("SCAN: unexpected reply line %q", line)
		}
		if k <= prev || v != fmt.Sprintf("v%d", k) {
			return fmt.Errorf("SCAN: pair (%d, %s) after key %d", k, v, prev)
		}
		prev = k
	}
	for k := base; k < base+n; k++ {
		if k%2 == 0 {
			continue
		}
		if err := roundTrip(fmt.Sprintf("DEL %d", k), "OK"); err != nil {
			return err
		}
		if err := roundTrip(fmt.Sprintf("GET %d", k), "NOT_FOUND"); err != nil {
			return err
		}
	}
	return roundTrip("QUIT", "BYE")
}
