// iteration: an executable rendition of the paper's Figure 1 — why
// Citrus (and RCU structures generally) cannot offer consistent
// multi-key iteration concurrent with updates, and what a snapshot
// structure (Bonsai) buys instead.
//
// The paper's figure is a constructed schedule; this program constructs
// the same schedule for real. A reader traverses the tree in key order
// and pauses at a rendezvous key that lies between A and B. While it is
// paused, a writer deletes A (which the reader has already passed — so
// the reader's result will still contain A) and then deletes B (which
// the reader has not reached — so its result will miss B). The reader's
// traversal therefore reports "A present, B absent": it observed the
// *second* delete but not the *first*, an order that no sequential
// execution of the writer produces. With two readers paused on opposite
// sides, the two observations order the deletes in opposite ways —
// exactly Figure 1.
//
// The same schedule against Bonsai produces no anomaly: its traversal
// walks an immutable snapshot, so the paused reader still sees both A
// and B. (The price is that all Bonsai updaters serialize on one lock.)
//
// Run with: go run ./examples/iteration
package main

import (
	"fmt"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/internal/bonsai"
)

const (
	numKeys    = 1000
	keyA       = 100 // deleted first
	keyB       = 900 // deleted second
	rendezvous = 500 // reader pauses here, between A and B
)

// ranger abstracts the two trees' Range methods.
type ranger interface {
	Range(func(int, struct{}) bool)
}

// observe traverses tr, pausing at the rendezvous key: it signals
// `reached` and waits for `resume` before continuing. It returns whether
// the traversal saw A and B.
func observe(tr ranger, reached chan<- struct{}, resume <-chan struct{}) (sawA, sawB bool) {
	tr.Range(func(k int, _ struct{}) bool {
		switch k {
		case keyA:
			sawA = true
		case keyB:
			sawB = true
		case rendezvous:
			reached <- struct{}{}
			<-resume
		}
		return true
	})
	return sawA, sawB
}

func report(name string, sawA, sawB bool) {
	fmt.Printf("%s: paused traversal returned A:%v B:%v\n", name, sawA, sawB)
	switch {
	case sawA && !sawB:
		fmt.Printf("  → ANOMALY: the result reflects delete(B) but not the earlier\n")
		fmt.Printf("    delete(A) — no sequential order of the updates explains it.\n")
		fmt.Printf("    This is the paper's Figure 1, and the reason Citrus offers a\n")
		fmt.Printf("    wait-free *contains*, not a wait-free iterator.\n\n")
	case sawA && sawB:
		fmt.Printf("  → consistent: the traversal behaves as if it ran entirely before\n")
		fmt.Printf("    both deletes (an immutable snapshot).\n\n")
	default:
		fmt.Printf("  → consistent with some serial position of the traversal.\n\n")
	}
}

func main() {
	fmt.Printf("schedule: reader passes %d, pauses at %d; writer deletes %d then %d;\n",
		keyA, rendezvous, keyA, keyB)
	fmt.Printf("reader resumes toward %d\n\n", keyB)

	// --- Citrus: in-place updates, traversal sees a mix of states. ---
	{
		tree := citrus.New[int, struct{}]()
		w := tree.NewHandle()
		for k := 0; k < numKeys; k++ {
			w.Insert(k, struct{}{})
		}
		reached := make(chan struct{})
		resume := make(chan struct{})
		result := make(chan [2]bool, 1)
		go func() {
			a, b := observe(tree, reached, resume)
			result <- [2]bool{a, b}
		}()
		<-reached      // reader is paused between A and B
		w.Delete(keyA) // reader already passed A: too late to unsee it
		w.Delete(keyB) // reader has not reached B: it will miss it
		close(resume)
		r := <-result
		report("Citrus", r[0], r[1])
		w.Close()
	}

	// --- Bonsai: path copying, traversal walks one snapshot. ---
	{
		tree := bonsai.New[int, struct{}]()
		w := tree.NewHandle()
		for k := 0; k < numKeys; k++ {
			w.Insert(k, struct{}{})
		}
		reached := make(chan struct{})
		resume := make(chan struct{})
		result := make(chan [2]bool, 1)
		go func() {
			a, b := observe(tree, reached, resume)
			result <- [2]bool{a, b}
		}()
		<-reached
		w.Delete(keyA)
		w.Delete(keyB)
		close(resume)
		r := <-result
		report("Bonsai", r[0], r[1])
		w.Close()
	}

	fmt.Println("Citrus's single-key operations remain linearizable throughout; only")
	fmt.Println("multi-key reads are unordered. See internal/linearizability for the")
	fmt.Println("checker that verifies the single-key guarantee.")
}
