// rcucache: using package rcu on its own, outside any tree.
//
// A classic RCU deployment: a read-mostly configuration object, updated
// by swapping an atomic pointer. In Go the garbage collector already
// keeps the *old* config alive while readers hold it — what the GC does
// NOT give you is a point in time after which no reader can still be
// using it. That matters the moment the old object's resources are
// recycled rather than dropped: returned to a pool, reused as a buffer,
// handed back to a C library, or — as in the Citrus tree itself —
// left physically linked in a structure that readers are still crossing.
//
// Here each config carries a payload buffer that the writer recycles
// into the next config. The writer swaps in a new config, calls
// Synchronize to wait out all pre-existing read-side critical sections,
// and only then scribbles over the old payload. Readers checksum the
// payload inside their critical section; a checksum mismatch would mean
// a reader observed a recycled buffer. With the grace period the count
// is provably zero. Pass -skip-grace-period to remove the Synchronize
// call and watch the torn reads appear (they are a race, so the count
// varies — any nonzero count is a correctness bug in a real system).
//
// Run with:
//
//	go run ./examples/rcucache
//	go run ./examples/rcucache -skip-grace-period
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/go-citrus/citrus/rcu"
)

const payloadWords = 512

// config is the shared read-mostly object. version is woven through the
// payload so a reader can detect observing a half-recycled buffer.
type config struct {
	version uint64
	payload []uint64 // every word equals version (the reader's checksum)
}

func newConfig(version uint64, buf []uint64) *config {
	if buf == nil {
		buf = make([]uint64, payloadWords)
	}
	for i := range buf {
		buf[i] = version
	}
	return &config{version: version, payload: buf}
}

// valid checksums the payload inside the caller's critical section.
func (c *config) valid() bool {
	for _, w := range c.payload {
		if w != c.version {
			return false
		}
	}
	return true
}

func main() {
	skipGrace := flag.Bool("skip-grace-period", false, "recycle the old payload without waiting for readers (demonstrates the bug)")
	duration := flag.Duration("duration", time.Second, "how long to run")
	readers := flag.Int("readers", 4, "reader goroutines")
	flag.Parse()

	dom := rcu.NewDomain()
	var current atomic.Pointer[config]
	current.Store(newConfig(1, nil))

	var (
		stop    atomic.Bool
		reads   atomic.Int64
		torn    atomic.Int64
		reloads int64
		wg      sync.WaitGroup
	)

	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := dom.Register()
			defer h.Unregister()
			for !stop.Load() {
				h.ReadLock()
				cfg := current.Load()
				if !cfg.valid() {
					torn.Add(1)
				}
				h.ReadUnlock()
				reads.Add(1)
			}
		}()
	}

	// The writer: swap in a new config, wait a grace period, recycle the
	// old payload buffer into the next config.
	writer := dom.Register()
	deadline := time.Now().Add(*duration)
	var spare []uint64
	for time.Now().Before(deadline) {
		old := current.Load()
		next := newConfig(old.version+1, spare)
		current.Store(next)
		if !*skipGrace {
			writer.Synchronize() // no pre-existing reader still holds old
		}
		// Recycle: overwrite the old payload. If a reader could still be
		// inside a critical section holding `old`, this write would be
		// visible to it as a torn config.
		for i := range old.payload {
			old.payload[i] = ^uint64(0)
		}
		spare = old.payload
		reloads++
	}
	writer.Unregister()
	stop.Store(true)
	wg.Wait()

	mode := "with grace periods"
	if *skipGrace {
		mode = "WITHOUT grace periods"
	}
	fmt.Printf("%s: %d reloads, %d reads, %d torn reads\n",
		mode, reloads, reads.Load(), torn.Load())
	switch {
	case *skipGrace && torn.Load() > 0:
		fmt.Println("→ recycling before the grace period let readers observe reused memory.")
	case *skipGrace:
		fmt.Println("→ no torn read this time — it is a race, not a guarantee. Run again.")
	default:
		fmt.Println("→ Synchronize guarantees zero torn reads: every reader that could")
		fmt.Println("  hold the old config finished before its buffer was recycled.")
	}
}
