// Quickstart: the Citrus tree as a concurrent ordered map.
//
// Eight goroutines insert, delete and look up keys concurrently — updates
// run truly in parallel with each other (fine-grained per-node locks) and
// lookups never block (RCU). Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	citrus "github.com/go-citrus/citrus"
)

func main() {
	tree := citrus.New[int, string]()

	// Every goroutine gets its own handle (an RCU reader registration).
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.NewHandle()
			defer h.Close()

			// Each worker owns the keys ≡ w (mod workers).
			for k := w; k < 1000; k += workers {
				h.Insert(k, fmt.Sprintf("value-%d", k))
			}
			// Drop the odd ones again.
			for k := w; k < 1000; k += workers {
				if k%2 == 1 {
					h.Delete(k)
				}
			}
			// Wait-free lookups, racing with everyone else's updates.
			for k := 0; k < 1000; k++ {
				h.Get(k)
			}
		}(w)
	}
	wg.Wait()

	h := tree.NewHandle()
	defer h.Close()
	if v, ok := h.Get(42); ok {
		fmt.Printf("tree[42] = %q\n", v)
	}
	fmt.Printf("size: %d keys (expected 500)\n", tree.Len())
	fmt.Printf("height of the unbalanced tree: %d\n", tree.Height())
	if err := tree.CheckInvariants(); err != nil {
		fmt.Println("invariant violation:", err)
		return
	}
	fmt.Println("structural invariants: OK")

	// Ordered iteration (quiescent — all writers are done).
	first3 := make([]int, 0, 3)
	tree.Range(func(k int, _ string) bool {
		first3 = append(first3, k)
		return len(first3) < 3
	})
	fmt.Println("smallest keys:", first3)
}
