// Package citrus provides a concurrent binary search tree with wait-free
// lookups and concurrently executing updates, implementing the Citrus
// tree of Arbel & Attiya, "Concurrent Updates with RCU: Search Tree as an
// Example" (PODC 2014).
//
// A Tree is a linearizable ordered dictionary. Contains never blocks and
// never retries (it is wait-free for bounded key spaces): it runs inside
// an RCU read-side critical section and proceeds in parallel with any
// number of updates. Insert and Delete synchronize with each other using
// fine-grained per-node locking with post-lock validation, and with
// lookups through RCU grace periods: a delete that relocates a node's
// successor waits for all pre-existing lookups before unlinking the old
// copy, so a lookup can never miss a key that is logically present.
//
// # Handles
//
// RCU requires each participating goroutine to be registered, so all
// operations go through a per-goroutine Handle:
//
//	tree := citrus.New[int, string]()
//
//	h := tree.NewHandle() // one per worker goroutine
//	defer h.Close()
//
//	h.Insert(7, "seven")
//	v, ok := h.Get(7)
//	h.Delete(7)
//
// A Handle must not be used from two goroutines at once; create one
// handle per goroutine (they are cheap: one RCU registration slot).
//
// # Consistency of multi-key reads
//
// Single-key operations are linearizable. Multi-key reads are NOT: the
// paper shows (§1, Figure 1) that RCU readers traversing several
// locations can observe concurrent updates in inconsistent orders, which
// is exactly why Citrus restricts its wait-free read-side to single-key
// search.
//
// Range scans (Handle.RangeScan, Handle.Scan) are therefore offered with
// an explicitly *weakly consistent* contract, safe to run concurrently
// with any updates:
//
//   - emitted keys ascend strictly — no duplicates, in order;
//   - every emitted pair was present in the tree at some instant during
//     the scan;
//   - a key present (and not relocated by a concurrent two-child delete)
//     for the scan's whole duration is guaranteed to be emitted.
//
// What a scan does NOT promise is a point-in-time snapshot: two keys
// observed by one scan may never have coexisted. Callers that need
// snapshot semantics should serialize updates around the scan themselves
// or use a snapshot-capable structure (the bonsai tree in this module's
// internal evaluation suite is one).
//
// A scan runs inside one RCU read-side critical section, which delays
// every two-child delete's grace period for its whole duration. For long
// scans under update load prefer Handle.RangeScanBatched, which drops
// and re-acquires the read lock every batch, bounding reader dwell time
// at the cost of a slightly weaker miss guarantee (a key whose node is
// relocated between batches can be missed once).
//
// The quiescent iteration helpers on Tree (Range, Keys, Len) now run the
// same scan path; they remain documented quiescent-only because their
// results are only *stable* when the tree is quiet.
//
// The lower-level building blocks are exported for reuse: package rcu
// contains the paper's scalable user-space RCU implementation (§5), which
// is useful on its own for any read-mostly data structure.
package citrus

import (
	"cmp"
	"context"

	"github.com/go-citrus/citrus/citrustrace"
	"github.com/go-citrus/citrus/internal/core"
	"github.com/go-citrus/citrus/rcu"
)

// Tree is a concurrent binary search tree implementing an ordered
// dictionary. Create one with New and access it through per-goroutine
// Handles.
type Tree[K cmp.Ordered, V any] struct {
	inner *core.Tree[K, V]
}

// New returns an empty tree using the paper's scalable RCU flavor
// (rcu.Domain) for read-side synchronization and grace periods.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	return NewWithFlavor[K, V](rcu.NewDomain())
}

// NewWithFlavor returns an empty tree using the given RCU flavor. Use
// rcu.NewClassicDomain to reproduce the paper's Figure 8 comparison, or
// share one rcu.Domain among several trees so a single registration
// covers them all.
func NewWithFlavor[K cmp.Ordered, V any](flavor rcu.Flavor) *Tree[K, V] {
	return &Tree[K, V]{inner: core.NewTree[K, V](flavor)}
}

// NewWithRecycling returns an empty tree that recycles unlinked nodes
// through rec instead of leaving them to the garbage collector: deleted
// nodes are pooled after an RCU grace period and reused by later
// inserts, removing the per-insert allocation on churn-heavy workloads
// (the memory-reclamation integration named as future work in §7 of the
// paper). The reclaimer should be built on the same flavor; the caller
// owns its lifecycle and should Close it after the tree is no longer
// updated.
func NewWithRecycling[K cmp.Ordered, V any](flavor rcu.Flavor, rec *rcu.Reclaimer) *Tree[K, V] {
	return &Tree[K, V]{inner: core.NewTreeWithRecycling[K, V](flavor, rec)}
}

// NewHandle registers a handle for the calling goroutine. Handles are not
// safe for concurrent use; create one per goroutine and Close it when the
// goroutine is done with the tree.
func (t *Tree[K, V]) NewHandle() *Handle[K, V] {
	return &Handle[K, V]{inner: t.inner.NewHandle()}
}

// Len reports the number of keys in the tree. Quiescent use only (see the
// package comment).
func (t *Tree[K, V]) Len() int { return t.inner.Len() }

// Keys returns all keys in ascending order. Quiescent use only.
func (t *Tree[K, V]) Keys() []K { return t.inner.Keys() }

// Range calls fn for each key/value pair in ascending key order until fn
// returns false. Quiescent use only.
func (t *Tree[K, V]) Range(fn func(key K, value V) bool) { t.inner.Range(fn) }

// Height reports the height of the (unbalanced) tree. Quiescent use only.
func (t *Tree[K, V]) Height() int { return t.inner.Height() }

// CheckInvariants verifies the tree's structural invariants (sentinel
// skeleton, strict BST order, no marked reachable nodes). Quiescent use
// only; returns nil when the structure is sound.
func (t *Tree[K, V]) CheckInvariants() error { return t.inner.CheckInvariants() }

// Stats is a point-in-time snapshot of a Tree's cumulative operation
// counters. Every count is monotonically non-decreasing, so two
// snapshots can be subtracted for interval rates. See
// docs/OBSERVABILITY.md for what each counter means in terms of the
// paper's algorithm.
type Stats struct {
	Contains        int64 `json:"contains"`          // Contains/Get calls
	Inserts         int64 `json:"inserts"`           // Insert calls that added a key
	InsertExisting  int64 `json:"insert_existing"`   // Insert calls that found the key present
	InsertRetries   int64 `json:"insert_retries"`    // insert validation failures (retried)
	Deletes         int64 `json:"deletes"`           // Delete calls that removed a key
	DeleteMisses    int64 `json:"delete_misses"`     // Delete calls that found no key
	DeleteRetries   int64 `json:"delete_retries"`    // delete validation failures (retried)
	TwoChildDeletes int64 `json:"two_child_deletes"` // successor-relocation deletes = inline grace periods
	DeleteTimeouts  int64 `json:"delete_timeouts"`   // DeleteCtx grace-period waits cut by the deadline

	NodesRetired int64 `json:"nodes_retired"` // recycling only: nodes handed to the pool
	NodesReused  int64 `json:"nodes_reused"`  // recycling only: pooled nodes reused by inserts

	Scans        int64 `json:"scans"`         // RangeScan/Scan calls (batched or not)
	ScanSections int64 `json:"scan_sections"` // read-side critical sections opened by scans
	ScanPairs    int64 `json:"scan_pairs"`    // pairs emitted to scan callbacks
	ScanNodes    int64 `json:"scan_nodes"`    // nodes visited by scans (emitted or not)

	// RCU carries the flavor's grace-period accounting when the flavor
	// keeps any (rcu.Domain and rcu.ClassicDomain do); nil otherwise.
	// If the flavor is shared between trees it covers all of them.
	RCU *rcu.Stats `json:"rcu,omitempty"`
}

// Stats returns a snapshot of the tree's operation counters, recycling
// effectiveness, and the underlying RCU domain's grace-period
// statistics. It is safe to call at any time, from any goroutine,
// concurrently with operations and handle churn; recording costs the
// operations themselves two uncontended plain atomic accesses, so the
// wait-free read side keeps its paper-guaranteed shape.
func (t *Tree[K, V]) Stats() Stats {
	s := t.inner.Stats()
	return Stats{
		Contains:        s.Contains,
		Inserts:         s.Inserts,
		InsertExisting:  s.InsertExisting,
		InsertRetries:   s.InsertRetries,
		Deletes:         s.Deletes,
		DeleteMisses:    s.DeleteMisses,
		DeleteRetries:   s.DeleteRetries,
		TwoChildDeletes: s.TwoChildDeletes,
		DeleteTimeouts:  s.DeleteTimeouts,
		NodesRetired:    s.NodesRetired,
		NodesReused:     s.NodesReused,
		Scans:           s.Scans,
		ScanSections:    s.ScanSections,
		ScanPairs:       s.ScanPairs,
		ScanNodes:       s.ScanNodes,
		RCU:             s.RCU,
	}
}

// EnableTracing attaches a fresh flight recorder to the tree and
// returns it: from now on every operation records typed events
// (operation spans, contended per-node lock waits, validation retries,
// retire/reclaim) into per-handle ring buffers, and — when the tree's
// RCU flavor supports it (rcu.Domain and rcu.ClassicDomain do) — the
// flavor records grace-period spans with a per-reader wait breakdown.
// See package citrustrace for the event taxonomy and the ring-buffer
// overwrite semantics.
//
// Tracing is designed to be cheap but is not free while enabled (about
// two timestamp reads and a ring write per operation); when disabled —
// the default — the hot paths pay one predictable branch and allocate
// nothing. EnableTracing may be called at any time, concurrently with
// operations; calling it again replaces the recorder. If the flavor is
// shared between trees, its grace-period events go to the most recently
// attached recorder.
func (t *Tree[K, V]) EnableTracing(opts ...citrustrace.Option) *citrustrace.Recorder {
	rec := citrustrace.New(opts...)
	if td, ok := t.inner.Flavor().(rcu.Traceable); ok {
		td.SetTracer(rec.SyncTracer("rcu"))
	}
	t.inner.SetTracer(rec)
	return rec
}

// DisableTracing detaches the tree's flight recorder (and the flavor's
// grace-period tracer, when one was attached). Operations already in
// flight finish recording into the recorder they started with; the
// recorder itself stays valid, so a final DumpTrace after disabling
// still returns the captured window.
func (t *Tree[K, V]) DisableTracing() {
	t.inner.SetTracer(nil)
	if td, ok := t.inner.Flavor().(rcu.Traceable); ok {
		td.SetTracer(nil)
	}
}

// TraceRecorder reports the currently attached flight recorder, nil
// when tracing is disabled.
func (t *Tree[K, V]) TraceRecorder() *citrustrace.Recorder { return t.inner.Tracer() }

// DumpTrace snapshots the flight recorder: every ring's surviving
// events merged and time-ordered. It is safe to call at any time, from
// any goroutine, concurrently with operations and with tracing toggles;
// writers are never blocked. With tracing disabled it returns an empty
// Trace. Serialize the result with Trace.WriteJSON or
// Trace.WriteChromeTrace (chrome://tracing / Perfetto).
func (t *Tree[K, V]) DumpTrace() citrustrace.Trace {
	if rec := t.inner.Tracer(); rec != nil {
		return rec.Snapshot()
	}
	return citrustrace.Trace{}
}

// A Handle is one goroutine's access point to a Tree.
type Handle[K cmp.Ordered, V any] struct {
	inner *core.Handle[K, V]
}

// Get returns the value stored under key, if any. It is wait-free: no
// locks, no retries, running concurrently with any updates.
func (h *Handle[K, V]) Get(key K) (V, bool) { return h.inner.Contains(key) }

// Contains reports whether key is in the tree. Wait-free.
func (h *Handle[K, V]) Contains(key K) bool {
	_, ok := h.inner.Contains(key)
	return ok
}

// Insert adds (key, value) to the tree. It returns false — and stores
// nothing — if key is already present.
func (h *Handle[K, V]) Insert(key K, value V) bool { return h.inner.Insert(key, value) }

// Delete removes key from the tree. It returns false if key is absent.
func (h *Handle[K, V]) Delete(key K) bool { return h.inner.Delete(key) }

// DeleteCtx removes key from the tree like Delete, but bounds the
// caller's wait with ctx: a two-child delete's inline grace-period wait
// (the paper's line 74) is abandoned when ctx is done first, returning
// (true, err) with err matching both rcu.ErrGracePeriodTimeout and
// ctx.Err() under errors.Is. The delete has taken effect in that case —
// the key is gone — and the remaining unlink of the old successor
// completes on a background goroutine once the grace period elapses
// (counted in Stats.DeleteTimeouts). A ctx already done, or done
// between retries, returns (false, ctx.Err()) with the tree unchanged
// by this call.
func (h *Handle[K, V]) DeleteCtx(ctx context.Context, key K) (bool, error) {
	return h.inner.DeleteCtx(ctx, key)
}

// RangeScan calls fn for each pair with lo ≤ key < hi in ascending key
// order, stopping early when fn returns false. It is weakly consistent
// (see the package comment): no duplicates, every emitted pair was
// present at some instant during the scan, and a key present — and not
// relocated by a concurrent two-child delete — for the scan's whole
// duration is guaranteed to appear. The whole scan runs inside one RCU
// read-side critical section; fn must not block indefinitely or call
// back into the tree.
func (h *Handle[K, V]) RangeScan(lo, hi K, fn func(key K, value V) bool) {
	h.inner.RangeScan(lo, hi, fn)
}

// Scan calls fn for every pair in ascending key order, stopping early
// when fn returns false. Weakly consistent; see RangeScan.
func (h *Handle[K, V]) Scan(fn func(key K, value V) bool) { h.inner.Scan(fn) }

// RangeScanLimit is RangeScan bounded to at most limit pairs: the scan
// stops after the limit-th emit even if fn kept returning true. On a
// single tree the traversal already streams and stops early, so this is
// purely a convenience — it exists so Tree and Forest handles offer the
// same bounded-scan surface (ForestHandle.RangeScanLimit is where the
// bound buys an O(limit × shards) memory guarantee). limit <= 0 scans
// nothing.
func (h *Handle[K, V]) RangeScanLimit(lo, hi K, limit int, fn func(key K, value V) bool) {
	if limit <= 0 {
		return
	}
	n := 0
	h.inner.RangeScan(lo, hi, func(k K, v V) bool {
		if !fn(k, v) {
			return false
		}
		n++
		return n < limit
	})
}

// RangeScanBatched is RangeScan with bounded reader dwell: the read-side
// critical section is dropped and re-acquired after every batch pairs
// emitted, so a long scan never delays a grace period by more than one
// batch's worth of work. Each batch re-descends from the root by key, so
// the guarantee weakens slightly versus RangeScan: a key relocated by a
// two-child delete between batches can be missed once even if logically
// present throughout. batch < 1 means unbatched (identical to
// RangeScan).
func (h *Handle[K, V]) RangeScanBatched(lo, hi K, batch int, fn func(key K, value V) bool) {
	h.inner.RangeScanBatched(lo, hi, batch, fn)
}

// ScanBatched is Scan with bounded reader dwell; see RangeScanBatched.
func (h *Handle[K, V]) ScanBatched(batch int, fn func(key K, value V) bool) {
	h.inner.ScanBatched(batch, fn)
}

// Close unregisters the handle from the tree's RCU flavor. Close is
// idempotent; any operation on the handle after Close panics with
// "citrus: Handle used after Close".
func (h *Handle[K, V]) Close() { h.inner.Close() }
