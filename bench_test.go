// Benchmarks regenerating the measurements behind every figure of the
// Citrus paper's evaluation (§5), as testing.B entry points. Each
// BenchmarkFigure* runs the figure's operation mix on the figure's series
// at a fixed worker count; ns/op is the mean cost of one dictionary
// operation under that mix, so ops/sec = workers·1e9/ns_op is directly
// comparable with the paper's y-axes. cmd/citrusbench runs the full
// wall-clock thread sweeps and prints the paper-shaped tables; these
// benchmarks are the `go test -bench` face of the same cells.
//
// Environment knobs (defaults keep `go test -bench=.` minutes-fast on a
// laptop):
//
//	CITRUS_BENCH_THREADS  worker goroutines per benchmark (default 4)
//	CITRUS_BENCH_FULL=1   use the paper's key ranges (2e5 / 2e6) instead
//	                      of the 100× scaled-down defaults
package citrus_test

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	citrus "github.com/go-citrus/citrus"
	"github.com/go-citrus/citrus/internal/harness"
	"github.com/go-citrus/citrus/internal/impls"
	"github.com/go-citrus/citrus/internal/workload"
	"github.com/go-citrus/citrus/rcu"
)

func benchThreads() int {
	if s := os.Getenv("CITRUS_BENCH_THREADS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

func benchKeyRange(paperRange int) int {
	if os.Getenv("CITRUS_BENCH_FULL") == "1" {
		return paperRange
	}
	return paperRange / 100
}

// runCell runs b.N operations of the figure's mix spread over the bench
// worker count against one implementation.
func runCell(b *testing.B, nf impls.NamedFactory[int, int], mixFor harness.MixFor, keyRange int) {
	b.Helper()
	threads := benchThreads()
	m := nf.New()
	workload.Prefill(m, keyRange, 1)
	b.ResetTimer()

	var next atomic.Int64
	var wg sync.WaitGroup
	const batch = 256
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 1)
			mix := mixFor(w, threads)
			for {
				start := next.Add(batch) - batch
				if start >= int64(b.N) {
					return
				}
				end := min(start+batch, int64(b.N))
				for i := start; i < end; i++ {
					workload.Apply(h, rng, mix, keyRange)
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	opsPerSec := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(opsPerSec, "ops/s")
}

func benchFigure(b *testing.B, figID string) {
	f, ok := harness.FigureByID(figID)
	if !ok {
		b.Fatalf("unknown figure %s", figID)
	}
	keyRange := benchKeyRange(f.KeyRange)
	for _, nf := range f.Series() {
		b.Run(nf.Name, func(b *testing.B) { runCell(b, nf, f.Mix, keyRange) })
	}
}

// BenchmarkFigure8 compares Citrus over the classic global-lock RCU with
// Citrus over the paper's scalable RCU (50% contains, small key range).
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFigure9a/b: a single updating worker, all others read-only.
func BenchmarkFigure9a(b *testing.B) { benchFigure(b, "9a") }
func BenchmarkFigure9b(b *testing.B) { benchFigure(b, "9b") }

// BenchmarkFigure10a..f: the contains-ratio × key-range grid over the six
// dictionaries.
func BenchmarkFigure10a(b *testing.B) { benchFigure(b, "10a") }
func BenchmarkFigure10b(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFigure10c(b *testing.B) { benchFigure(b, "10c") }
func BenchmarkFigure10d(b *testing.B) { benchFigure(b, "10d") }
func BenchmarkFigure10e(b *testing.B) { benchFigure(b, "10e") }
func BenchmarkFigure10f(b *testing.B) { benchFigure(b, "10f") }

// BenchmarkRCUPrimitives (ablation A2) measures the read-side cost of the
// two RCU flavors against the synchronization primitives an RCU-less
// design would use instead.
func BenchmarkRCUPrimitives(b *testing.B) {
	b.Run("Domain/ReadLockUnlock", func(b *testing.B) {
		d := rcu.NewDomain()
		r := d.Register()
		defer r.Unregister()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.ReadLock()
			r.ReadUnlock()
		}
	})
	b.Run("ClassicDomain/ReadLockUnlock", func(b *testing.B) {
		d := rcu.NewClassicDomain()
		r := d.Register()
		defer r.Unregister()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.ReadLock()
			r.ReadUnlock()
		}
	})
	b.Run("RWMutex/RLockRUnlock", func(b *testing.B) {
		var mu sync.RWMutex
		for i := 0; i < b.N; i++ {
			mu.RLock()
			mu.RUnlock()
		}
	})
	b.Run("Mutex/LockUnlock", func(b *testing.B) {
		var mu sync.Mutex
		for i := 0; i < b.N; i++ {
			mu.Lock()
			mu.Unlock()
		}
	})
}

// BenchmarkSynchronize (ablation A1 companion) measures grace-period cost
// for both flavors, with idle and with actively cycling readers.
func BenchmarkSynchronize(b *testing.B) {
	for _, tc := range []struct {
		name   string
		flavor func() rcu.Flavor
	}{
		{"Domain", func() rcu.Flavor { return rcu.NewDomain() }},
		{"ClassicDomain", func() rcu.Flavor { return rcu.NewClassicDomain() }},
	} {
		b.Run(tc.name+"/idleReaders", func(b *testing.B) {
			f := tc.flavor()
			rs := make([]rcu.Reader, 8)
			for i := range rs {
				rs[i] = f.Register()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Synchronize()
			}
			b.StopTimer()
			for _, r := range rs {
				r.Unregister()
			}
		})
		b.Run(tc.name+"/activeReaders", func(b *testing.B) {
			f := tc.flavor()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				r := f.Register()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer r.Unregister()
					for {
						select {
						case <-stop:
							return
						default:
						}
						r.ReadLock()
						r.ReadUnlock()
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Synchronize()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkAblationTwoChildDelete isolates the operation that pays for a
// grace period in Citrus: deleting a node with two children, compared to
// reinserting it (no grace period).
func BenchmarkAblationTwoChildDelete(b *testing.B) {
	m := impls.NewCitrus[int, int]()
	h := m.NewHandle()
	defer h.Close()
	// A full binary layout: node 2 always has children 1 and 3 when
	// present, so Delete(2) always takes the successor path.
	h.Insert(2, 2)
	h.Insert(1, 1)
	h.Insert(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.Delete(2) {
			b.Fatal("delete failed")
		}
		if !h.Insert(2, 2) {
			b.Fatal("insert failed")
		}
	}
}

// BenchmarkAblationSkew (extension beyond the paper) runs the Figure 10c
// mix with Zipf(1.2)-skewed keys: updates pile onto a few hot subtrees,
// separating designs whose update synchronization is per-node from those
// whose bottleneck is global anyway.
func BenchmarkAblationSkew(b *testing.B) {
	keyRange := benchKeyRange(harness.KeyRangeSmall)
	threads := benchThreads()
	for _, nf := range impls.Figure[int, int]() {
		b.Run(nf.Name, func(b *testing.B) {
			m := nf.New()
			workload.Prefill(m, keyRange, 1)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			const batch = 256
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := m.NewHandle()
					defer h.Close()
					rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 1)
					z := workload.NewZipf(rng, 1.2, 1, uint64(keyRange-1))
					mix := workload.ReadMostly(50)
					for {
						start := next.Add(batch) - batch
						if start >= int64(b.N) {
							return
						}
						end := min(start+batch, int64(b.N))
						for i := start; i < end; i++ {
							workload.ApplyOp(h, rng.NextOp(mix), z.Intn(keyRange))
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkAblationRecycling compares churn cost and allocations with
// and without node recycling (the §7 reclamation extension): the
// recycling variant should shed roughly one allocation per insert once
// the pool warms up.
func BenchmarkAblationRecycling(b *testing.B) {
	churn := func(b *testing.B, h interface {
		Insert(int, int) bool
		Delete(int) bool
	}) {
		b.Helper()
		for k := 0; k < 128; k++ {
			h.Insert(k, k)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k := i % 128
			h.Delete(k)
			h.Insert(k, i)
		}
	}
	b.Run("GC-only", func(b *testing.B) {
		tree := citrus.New[int, int]()
		h := tree.NewHandle()
		defer h.Close()
		churn(b, h)
	})
	b.Run("Recycling", func(b *testing.B) {
		dom := rcu.NewDomain()
		rec := rcu.NewReclaimer(dom)
		defer rec.Close()
		tree := citrus.NewWithRecycling[int, int](dom, rec)
		h := tree.NewHandle()
		defer h.Close()
		churn(b, h)
	})
}

// BenchmarkContainsScaling pins down the wait-free read path of each
// structure at the bench thread count on a read-only workload.
func BenchmarkContainsScaling(b *testing.B) {
	keyRange := benchKeyRange(harness.KeyRangeSmall)
	for _, nf := range impls.All[int, int]() {
		b.Run(nf.Name, func(b *testing.B) {
			runCell(b, nf, harness.Uniform(workload.ReadOnly()), keyRange)
		})
	}
}
