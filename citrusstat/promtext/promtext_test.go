package promtext

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/go-citrus/citrus/citrusstat"
)

func TestCounterGaugeRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Counter("kv_requests_total", "Requests served.", 42, L("op", "get"), L("shard", "0"))
	e.Counter("kv_requests_total", "Requests served.", 7, L("op", "set"), L("shard", "0"))
	e.Gauge("kv_queue_depth", "Pending reclamation callbacks.", 3.5, L("shard", "1"))

	var buf strings.Builder
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP kv_requests_total Requests served.",
		"# TYPE kv_requests_total counter",
		`kv_requests_total{op="get",shard="0"} 42`,
		`kv_requests_total{op="set",shard="0"} 7`,
		"# TYPE kv_queue_depth gauge",
		`kv_queue_depth{shard="1"} 3.5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("payload missing %q:\n%s", want, out)
		}
	}

	m, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("payload does not parse: %v\n%s", err, out)
	}
	f := m["kv_requests_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("bad parsed family: %+v", f)
	}
	if s := f.Sample("op", "get"); s == nil || s.Value != 42 {
		t.Fatalf("get sample = %+v, want 42", s)
	}
	if g := m["kv_queue_depth"].Sample("shard", "1"); g == nil || g.Value != 3.5 {
		t.Fatalf("gauge sample = %+v, want 3.5", g)
	}
}

func TestHistogramMapping(t *testing.T) {
	var h citrusstat.Histogram
	// 3 samples of ~100ns (bucket [64,128), le bound 128ns = 1.28e-7 s)
	// and 1 of ~1µs (bucket [1024,2048)ns).
	for i := 0; i < 3; i++ {
		h.Record(100 * time.Nanosecond)
	}
	h.Record(1 * time.Microsecond)
	snap := h.Snapshot()

	e := NewEncoder()
	e.Histogram("kv_request_seconds", "Request latency.", snap, L("op", "get"))
	var buf strings.Builder
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("histogram does not parse: %v\n%s", err, buf.String())
	}
	f := m["kv_request_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("family = %+v, want histogram", f)
	}

	// The le=1.28e-07 bucket (upper bound of [64,128)ns) must hold the 3
	// fast samples; +Inf must hold all 4 and equal _count; _sum is the
	// exact nanosecond sum in seconds.
	var le128, leInf, count, sum float64
	gotInf := false
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] == "+Inf":
			leInf, gotInf = s.Value, true
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				t.Fatalf("bad le: %v", err)
			}
			if le == 128.0/1e9 {
				le128 = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if le128 != 3 {
		t.Errorf("le=1.28e-07 bucket = %v, want 3", le128)
	}
	if !gotInf || leInf != 4 || count != 4 {
		t.Errorf("+Inf = %v (present=%v), _count = %v, want both 4", leInf, gotInf, count)
	}
	if want := float64(snap.SumNanos) / 1e9; math.Abs(sum-want) > 1e-12 {
		t.Errorf("_sum = %v, want %v", sum, want)
	}
	// Buckets above the highest occupied one are trimmed; the last
	// finite bucket's cumulative count equals the total.
	if n := len(f.Samples); n > citrusstat.NumBuckets+3 {
		t.Errorf("histogram emitted %d samples; trailing empty buckets not trimmed", n)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	e := NewEncoder()
	e.Histogram("empty_seconds", "", citrusstat.Snapshot{})
	var buf strings.Builder
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("empty histogram does not parse: %v\n%s", err, buf.String())
	}
	f := m["empty_seconds"]
	if inf := f.Sample("le", "+Inf"); inf == nil || inf.Value != 0 {
		t.Fatalf("+Inf = %+v, want 0", inf)
	}
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	nasty := "a\\b\"c\nd"
	e := NewEncoder()
	e.Gauge("g", "", 1, L("k", nasty))
	var buf strings.Builder
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := m["g"].Samples[0].Labels["k"]; got != nasty {
		t.Fatalf("label round trip: got %q, want %q", got, nasty)
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	for name, build := range map[string]func(*Encoder){
		"bad metric name":  func(e *Encoder) { e.Counter("0bad", "", 1) },
		"bad label name":   func(e *Encoder) { e.Gauge("ok", "", 1, L("0bad", "v")) },
		"negative counter": func(e *Encoder) { e.Counter("ok", "", -1) },
		"type conflict": func(e *Encoder) {
			e.Counter("ok", "", 1)
			e.Gauge("ok", "", 1)
		},
	} {
		e := NewEncoder()
		build(e)
		if _, err := e.WriteTo(&strings.Builder{}); err == nil {
			t.Errorf("%s: WriteTo succeeded, want error", name)
		}
	}
}

func TestParseRejectsMalformedPayloads(t *testing.T) {
	for name, payload := range map[string]string{
		"interleaved families": "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{x=\"y\"} 2\n",
		"duplicate sample":     "# TYPE a counter\na 1\na 2\n",
		"type after samples":   "a 1\n# TYPE a counter\na{x=\"y\"} 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="0.2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\nh_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 6\n",
		"bad value":       "a pony\n",
		"unquoted label":  "a{x=y} 1\n",
		"dangling escape": `a{x="y\` + "\n",
	} {
		if _, err := Parse(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, payload)
		}
	}
}

func TestParseAcceptsRealWorldShapes(t *testing.T) {
	payload := "# a free comment\n" +
		"# HELP up Scrape health.\n# TYPE up gauge\nup 1\n" +
		"\n" +
		"untyped_metric{a=\"b\"} 4.2 1700000000\n" +
		"# TYPE inf_gauge gauge\ninf_gauge +Inf\n"
	m, err := Parse(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if m["up"].Help != "Scrape health." {
		t.Errorf("help = %q", m["up"].Help)
	}
	if m["untyped_metric"].Type != "untyped" {
		t.Errorf("type = %q, want untyped", m["untyped_metric"].Type)
	}
	if !math.IsInf(m["inf_gauge"].Samples[0].Value, 1) {
		t.Errorf("inf value lost")
	}
}
