package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name including any histogram suffix
	// (_bucket/_sum/_count).
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for the named label, "" if absent.
func (s Sample) Label(name string) string { return s.Labels[name] }

// A Family is one parsed metric family: its TYPE, HELP (may be empty)
// and samples in exposition order.
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "untyped"
	Help    string
	Samples []Sample
}

// Sample returns the family's first sample matching every given label
// pair, or nil. Pass label pairs as name, value, name, value, ...
func (f *Family) Sample(pairs ...string) *Sample {
outer:
	for i := range f.Samples {
		for j := 0; j+1 < len(pairs); j += 2 {
			if f.Samples[i].Labels[pairs[j]] != pairs[j+1] {
				continue outer
			}
		}
		return &f.Samples[i]
	}
	return nil
}

// Metrics is a parsed exposition payload, keyed by family name.
type Metrics map[string]*Family

// Parse reads a Prometheus text-format (0.0.4) payload and validates
// it strictly. Beyond line-level syntax it enforces the properties a
// scraper assumes:
//
//   - a family's lines are contiguous (no interleaving with another
//     family) and its TYPE comment precedes its samples;
//   - no duplicate sample (same name and label set);
//   - for each histogram series: `le` bucket values are cumulative
//     (non-decreasing in `le` order), the `+Inf` bucket is present, and
//     it equals the series' `_count`.
//
// Any violation is an error naming the offending line.
func Parse(r io.Reader) (Metrics, error) {
	metrics := make(Metrics)
	var order []string
	closed := make(map[string]bool) // families no longer allowed to grow
	current := ""                   // family currently being read

	openFamily := func(name string, lineNo int) (*Family, error) {
		if f, ok := metrics[name]; ok {
			if closed[name] {
				return nil, fmt.Errorf("line %d: family %s interleaved with another family", lineNo, name)
			}
			return f, nil
		}
		f := &Family{Name: name, Type: "untyped"}
		metrics[name] = f
		order = append(order, name)
		return f, nil
	}
	switchTo := func(name string) {
		if current != "" && current != name {
			closed[current] = true
		}
		current = name
	}

	seen := make(map[string]bool) // duplicate sample detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			f, err := openFamily(name, lineNo)
			if err != nil {
				return nil, err
			}
			switchTo(name)
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
				continue
			}
			// TYPE line.
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.Type = typ
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := familyOf(s.Name, metrics)
		f, err := openFamily(famName, lineNo)
		if err != nil {
			return nil, err
		}
		switchTo(famName)
		if f.Type == "histogram" {
			if err := checkHistogramSuffix(s.Name, famName); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		key := sampleKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, name := range order {
		f := metrics[name]
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return metrics, nil
}

// familyOf maps a sample name to its family: histogram samples carry
// _bucket/_sum/_count suffixes on the family name. A bare name that
// matches a declared histogram family is that family; otherwise, strip
// a recognized suffix only if the stripped name was declared.
func familyOf(sampleName string, metrics Metrics) string {
	if f, ok := metrics[sampleName]; ok && f.Type != "histogram" {
		return sampleName
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sampleName, suffix); ok {
			if f, exists := metrics[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return sampleName
}

func checkHistogramSuffix(sampleName, famName string) error {
	switch strings.TrimPrefix(sampleName, famName) {
	case "_bucket", "_sum", "_count":
		return nil
	}
	return fmt.Errorf("histogram %s has sample %s without _bucket/_sum/_count suffix", famName, sampleName)
}

// sampleKey builds the duplicate-detection identity: name plus the
// sorted label set.
func sampleKey(s Sample) string {
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, n := range names {
		b.WriteByte('{')
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(s.Labels[n])
		b.WriteByte('}')
	}
	return b.String()
}

// seriesKey is sampleKey ignoring the le label — the identity of one
// histogram series across its bucket lines.
func seriesKey(s Sample) string {
	c := Sample{Name: "", Labels: make(map[string]string, len(s.Labels))}
	for n, v := range s.Labels {
		if n != "le" {
			c.Labels[n] = v
		}
	}
	return sampleKey(c)
}

// validateHistogram enforces cumulativeness and +Inf/_count agreement
// per series.
func validateHistogram(f *Family) error {
	type series struct {
		buckets  []Sample // in exposition order
		hasInf   bool
		infVal   float64
		count    float64
		hasCount bool
		hasSum   bool
	}
	all := make(map[string]*series)
	var order []string
	get := func(s Sample) *series {
		k := seriesKey(s)
		sr, ok := all[k]
		if !ok {
			sr = &series{}
			all[k] = sr
			order = append(order, k)
		}
		return sr
	}
	for _, s := range f.Samples {
		sr := get(s)
		switch strings.TrimPrefix(s.Name, f.Name) {
		case "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: _bucket without le label", f.Name)
			}
			if le == "+Inf" {
				sr.hasInf = true
				sr.infVal = s.Value
			}
			sr.buckets = append(sr.buckets, s)
		case "_count":
			sr.count = s.Value
			sr.hasCount = true
		case "_sum":
			sr.hasSum = true
		}
	}
	for _, k := range order {
		sr := all[k]
		if !sr.hasInf {
			return fmt.Errorf("histogram %s%s: missing +Inf bucket", f.Name, k)
		}
		if !sr.hasCount || !sr.hasSum {
			return fmt.Errorf("histogram %s%s: missing _count or _sum", f.Name, k)
		}
		if sr.infVal != sr.count {
			return fmt.Errorf("histogram %s%s: +Inf bucket %v != _count %v", f.Name, k, sr.infVal, sr.count)
		}
		// Buckets must be cumulative in ascending le order.
		type bound struct {
			le  float64
			val float64
		}
		bounds := make([]bound, 0, len(sr.buckets))
		for _, b := range sr.buckets {
			le, err := parseLe(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s%s: bad le %q", f.Name, k, b.Labels["le"])
			}
			bounds = append(bounds, bound{le, b.Value})
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
		for i := 1; i < len(bounds); i++ {
			if bounds[i].val < bounds[i-1].val {
				return fmt.Errorf("histogram %s%s: bucket le=%v count %v < preceding %v (not cumulative)",
					f.Name, k, bounds[i].le, bounds[i].val, bounds[i-1].val)
			}
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %s: %v", s.Name, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {name="value",...} block starting at s[0]=='{'
// into dst, returning the index just past the closing '}'.
func parseLabels(s string, dst map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isLabelNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("bad label block %q", s)
		}
		name := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label %s: missing '='", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := dst[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		dst[name] = val.String()
	}
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func unescapeHelp(h string) string {
	r := strings.NewReplacer(`\\`, `\`, `\n`, "\n")
	return r.Replace(h)
}
