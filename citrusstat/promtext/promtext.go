// Package promtext encodes citrusstat metrics in the Prometheus text
// exposition format (version 0.0.4) and strictly parses it back.
//
// The encoder is deliberately tiny — counters, gauges, and the mapping
// from citrusstat's power-of-two latency histograms onto Prometheus's
// cumulative histogram convention — because the repository takes no
// external dependencies. The bucket mapping: citrusstat bucket i counts
// samples in [2^i, 2^(i+1)) nanoseconds, so it contributes to every
// Prometheus `le` bucket with upper bound 2^(i+1)/1e9 seconds and
// above. `_sum` converts the exact SumNanos to seconds; `_count` is the
// total sample count; the `+Inf` bucket always equals `_count`.
//
// The parser (Parse) exists for round-trip tests and for load
// generators that validate a scraped payload. It is strict on purpose:
// it rejects interleaved metric families, samples preceding their TYPE
// line, non-cumulative histogram buckets, and histograms whose +Inf
// bucket disagrees with their _count — the failure modes a hand-rolled
// encoder is most likely to have.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/go-citrus/citrus/citrusstat"
)

// A Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricType is the TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// sample is one encoded exposition line (name + rendered label block +
// value), retained until WriteTo so a family's samples stay contiguous
// no matter the caller's interleaving.
type sample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered {..} block, "" when no labels
	value  string
}

// family accumulates one metric family.
type family struct {
	name    string
	help    string
	typ     metricType
	samples []sample
}

// An Encoder accumulates metric families and serializes them as one
// Prometheus text payload. Add samples with Counter, Gauge and
// Histogram — the same family may receive many samples with different
// label sets (e.g. one per shard), in any order relative to other
// families — then call WriteTo once. The zero value is not usable; use
// NewEncoder.
type Encoder struct {
	families map[string]*family
	order    []string
	err      error // first error; latched, reported by WriteTo
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder {
	return &Encoder{families: make(map[string]*family)}
}

// Counter adds a sample to a counter family. value must be
// non-negative and finite.
func (e *Encoder) Counter(name, help string, value float64, labels ...Label) {
	if value < 0 {
		e.fail(fmt.Errorf("promtext: counter %s: negative value %v", name, value))
		return
	}
	e.add(name, help, typeCounter, sample{labels: e.renderLabels(name, labels, "", 0), value: formatValue(value)})
}

// Gauge adds a sample to a gauge family.
func (e *Encoder) Gauge(name, help string, value float64, labels ...Label) {
	e.add(name, help, typeGauge, sample{labels: e.renderLabels(name, labels, "", 0), value: formatValue(value)})
}

// Histogram adds one citrusstat snapshot to a histogram family as a
// full cumulative series: one `_bucket` line per power-of-two upper
// bound (in seconds) through the last non-empty bucket, the `+Inf`
// bucket, `_sum` and `_count`. The bucket layout is fixed per
// snapshot's occupancy; an empty snapshot still emits the `+Inf`
// bucket, `_sum` 0 and `_count` 0 so the series exists from first
// scrape.
func (e *Encoder) Histogram(name, help string, s citrusstat.Snapshot, labels ...Label) {
	var samples []sample
	var cum int64
	top := -1
	for i := citrusstat.NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			top = i
			break
		}
	}
	for i := 0; i <= top; i++ {
		cum += s.Counts[i]
		le := math.Ldexp(1, i+1) / 1e9 // 2^(i+1) ns in seconds
		samples = append(samples, sample{
			suffix: "_bucket",
			labels: e.renderLabels(name, labels, "le", le),
			value:  strconv.FormatInt(cum, 10),
		})
	}
	samples = append(samples,
		sample{suffix: "_bucket", labels: e.renderLabels(name, labels, "le", math.Inf(1)), value: strconv.FormatInt(s.Total(), 10)},
		sample{suffix: "_sum", labels: e.renderLabels(name, labels, "", 0), value: formatValue(float64(s.SumNanos) / 1e9)},
		sample{suffix: "_count", labels: e.renderLabels(name, labels, "", 0), value: strconv.FormatInt(s.Total(), 10)},
	)
	e.add(name, help, typeHistogram, samples...)
}

// fail latches the first error for WriteTo to report.
func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Encoder) add(name, help string, typ metricType, samples ...sample) {
	if !validMetricName(name) {
		e.fail(fmt.Errorf("promtext: invalid metric name %q", name))
		return
	}
	f, ok := e.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		e.families[name] = f
		e.order = append(e.order, name)
	} else if f.typ != typ {
		e.fail(fmt.Errorf("promtext: metric %s registered as %s and %s", name, f.typ, typ))
		return
	}
	f.samples = append(f.samples, samples...)
}

// renderLabels renders the label block, optionally appending an `le`
// label (for histogram buckets). leVal is formatted with the shortest
// representation that round-trips, +Inf as "+Inf" per the format spec.
func (e *Encoder) renderLabels(metric string, labels []Label, leName string, leVal float64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelName(l.Name) {
			e.fail(fmt.Errorf("promtext: metric %s: invalid label name %q", metric, l.Name))
			return ""
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatLe(leVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo serializes every family added so far: `# HELP`, `# TYPE`,
// then the family's samples, families in first-added order. It reports
// the first error any Add-style call latched, so call sites only need
// one error check.
func (e *Encoder) WriteTo(w io.Writer) (int64, error) {
	if e.err != nil {
		return 0, e.err
	}
	var b strings.Builder
	for _, name := range e.order {
		f := e.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(s.value)
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// formatValue renders a float sample value; integral values print
// without an exponent or trailing zeros ("42", not "4.2e+01").
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a histogram bucket bound.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// SortedLabels returns a copy of labels sorted by name — handy for
// callers that want deterministic label blocks regardless of map
// iteration order.
func SortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
