package citrusstat

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 {
		t.Fatal("empty histogram has samples")
	}
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram has a percentile")
	}
	if h.Mean() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram has a mean/sum")
	}
	if h.Summary() != "no latency samples" {
		t.Fatalf("Summary() = %q", h.Summary())
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if got := h.Total(); got != 1010 {
		t.Fatalf("Total() = %d", got)
	}
	// 100ns lands in bucket [64ns, 128ns); the interpolated p50 must
	// stay inside that bucket instead of jumping to the 128ns ceiling.
	if p50 := h.Percentile(50); p50 < 64*time.Nanosecond || p50 >= 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want within [64ns, 128ns)", p50)
	}
	// 1ms lands in bucket [524µs, 1.05ms); p99.9 interpolates inside it.
	if p999 := h.Percentile(99.9); p999 < 524288*time.Nanosecond || p999 > 1048576*time.Nanosecond {
		t.Fatalf("p99.9 = %v, want within 1ms's bucket [524µs, 1.05ms]", p999)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

// TestPercentileInterpolation pins the interpolated-percentile contract
// on known sample sets: results land inside the winning bucket (never
// the old power-of-two ceiling unless p=100), the estimate moves with p
// within one bucket, p0/p100 hit the occupied extremes, and the whole
// function is monotone in p.
func TestPercentileInterpolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(1000 * time.Nanosecond) // bucket [512, 1024)
	}
	s := h.Snapshot()
	// All mass in one bucket: p traverses [512, 1024) linearly.
	if p1 := s.Percentile(1); p1 < 512*time.Nanosecond || p1 > 530*time.Nanosecond {
		t.Fatalf("p1 = %v, want just above the 512ns bucket floor", p1)
	}
	p25, p50, p75 := s.Percentile(25), s.Percentile(50), s.Percentile(75)
	if !(p25 < p50 && p50 < p75) {
		t.Fatalf("within-bucket interpolation is flat: p25=%v p50=%v p75=%v", p25, p50, p75)
	}
	if p50 < 700*time.Nanosecond || p50 > 850*time.Nanosecond {
		t.Fatalf("p50 = %v, want ≈768ns (midpoint-ish of [512, 1024))", p50)
	}
	// p0 clamps to the first sample; p100 is the bucket's upper edge —
	// still a true upper bound for every recorded sample.
	if p0 := s.Percentile(0); p0 < 512*time.Nanosecond || p0 >= 1024*time.Nanosecond {
		t.Fatalf("p0 = %v, want inside [512ns, 1024ns)", p0)
	}
	if p100 := s.Percentile(100); p100 != 1024*time.Nanosecond {
		t.Fatalf("p100 = %v, want the 1024ns bucket ceiling", p100)
	}
	// Out-of-range p clamps rather than extrapolating.
	if s.Percentile(-5) != s.Percentile(0) || s.Percentile(200) != s.Percentile(100) {
		t.Fatal("out-of-range p must clamp to [0, 100]")
	}

	// Two-bucket set: 90 fast, 10 slow. p90 boundary stays in the fast
	// bucket; p91+ crosses into the slow one; monotone throughout.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Record(100 * time.Nanosecond) // bucket [64, 128)
	}
	for i := 0; i < 10; i++ {
		h2.Record(time.Millisecond) // bucket [524288, 1048576)
	}
	s2 := h2.Snapshot()
	if p := s2.Percentile(50); p < 64*time.Nanosecond || p >= 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want in the fast bucket", p)
	}
	if p := s2.Percentile(95); p < 524288*time.Nanosecond || p > 1048576*time.Nanosecond {
		t.Fatalf("p95 = %v, want in the slow bucket", p)
	}
	prev := time.Duration(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		cur := s2.Percentile(p)
		if cur < prev {
			t.Fatalf("Percentile not monotone: p=%v gave %v after %v", p, cur, prev)
		}
		prev = cur
	}
}

// TestSnapshotMerge pins Merge exactness: merging two snapshots on the
// shared log2 lattice is indistinguishable from recording both sample
// streams into one histogram.
func TestSnapshotMerge(t *testing.T) {
	var a, b, both Histogram
	samples := []struct {
		h *Histogram
		d time.Duration
	}{
		{&a, 100 * time.Nanosecond}, {&a, 3 * time.Microsecond}, {&a, time.Millisecond},
		{&b, 80 * time.Nanosecond}, {&b, 90 * time.Second}, {&b, time.Nanosecond},
	}
	for _, s := range samples {
		s.h.Record(s.d)
		both.Record(s.d)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	if merged != both.Snapshot() {
		t.Fatalf("Merge is not exact:\n got %+v\nwant %+v", merged, both.Snapshot())
	}
	if merged.Total() != 6 || merged.Sum() != both.Sum() {
		t.Fatalf("merged totals wrong: n=%d sum=%v", merged.Total(), merged.Sum())
	}
	// Merging an empty snapshot is the identity.
	id := a.Snapshot()
	id.Merge(Snapshot{})
	if id != a.Snapshot() {
		t.Fatal("merging an empty snapshot changed the receiver")
	}
}

func TestHistogramExactSumAndMean(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Nanosecond)
	h.Record(300 * time.Nanosecond)
	if got := h.Sum(); got != 400*time.Nanosecond {
		t.Fatalf("Sum() = %v, want 400ns exactly", got)
	}
	if got := h.Mean(); got != 200*time.Nanosecond {
		t.Fatalf("Mean() = %v, want 200ns exactly", got)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(0)              // clamps to 1ns in both the bucket and the sum
	h.Record(10 * time.Hour) // clamps to the top bucket, exact in the sum
	if h.Total() != 2 {
		t.Fatal("clamped samples lost")
	}
	if h.Sum() != 10*time.Hour+time.Nanosecond {
		t.Fatalf("Sum() = %v", h.Sum())
	}
}

// TestHistogramNonPositiveClampConsistent pins the Record contract for
// non-positive samples: each is clamped to 1ns in BOTH the bucket and
// the sum, so Total, Sum and Mean agree. Before this was pinned,
// negative durations (a clock stepping backwards mid-wait) were counted
// in bucket 0 but excluded from the sum, silently dragging Mean below
// every recorded sample.
func TestHistogramNonPositiveClampConsistent(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Nanosecond)
	h.Record(0)
	if got := h.Total(); got != 2 {
		t.Fatalf("Total() = %d, want 2", got)
	}
	if got := h.Sum(); got != 2*time.Nanosecond {
		t.Fatalf("Sum() = %v, want 2ns (each clamped sample contributes 1ns)", got)
	}
	if got := h.Mean(); got != time.Nanosecond {
		t.Fatalf("Mean() = %v, want 1ns", got)
	}
	if got := h.Snapshot().Counts[0]; got != 2 {
		t.Fatalf("bucket 0 count = %d, want 2", got)
	}
}

func TestSnapshotSubAndJSON(t *testing.T) {
	var h Histogram
	h.Record(time.Microsecond)
	before := h.Snapshot()
	h.Record(time.Microsecond)
	h.Record(2 * time.Microsecond)
	delta := h.Snapshot().Sub(before)
	if delta.Total() != 2 {
		t.Fatalf("delta Total() = %d, want 2", delta.Total())
	}
	if delta.Sum() != 3*time.Microsecond {
		t.Fatalf("delta Sum() = %v, want 3µs", delta.Sum())
	}

	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 3 || back.SumNanos != h.Snapshot().SumNanos {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Total(); got != goroutines*per {
		t.Fatalf("Total() = %d, want %d", got, goroutines*per)
	}
}

func TestPublishIdempotent(t *testing.T) {
	calls := 0
	Publish("citrusstat_test_var", func() any { calls++; return map[string]int{"x": 1} })
	Publish("citrusstat_test_var", func() any { t.Error("second Publish won"); return nil })
	v := expvar.Get("citrusstat_test_var")
	if v == nil {
		t.Fatal("var not published")
	}
	if got := v.String(); got != `{"x":1}` {
		t.Fatalf("published value = %s", got)
	}
	if calls != 1 {
		t.Fatalf("first function called %d times", calls)
	}
}
