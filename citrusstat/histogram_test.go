package citrusstat

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 {
		t.Fatal("empty histogram has samples")
	}
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram has a percentile")
	}
	if h.Mean() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram has a mean/sum")
	}
	if h.Summary() != "no latency samples" {
		t.Fatalf("Summary() = %q", h.Summary())
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if got := h.Total(); got != 1010 {
		t.Fatalf("Total() = %d", got)
	}
	if p50 := h.Percentile(50); p50 < 100*time.Nanosecond || p50 > 256*time.Nanosecond {
		t.Fatalf("p50 = %v, want ≈128ns", p50)
	}
	if p999 := h.Percentile(99.9); p999 < time.Millisecond || p999 > 4*time.Millisecond {
		t.Fatalf("p99.9 = %v, want ≈1–2ms", p999)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramExactSumAndMean(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Nanosecond)
	h.Record(300 * time.Nanosecond)
	if got := h.Sum(); got != 400*time.Nanosecond {
		t.Fatalf("Sum() = %v, want 400ns exactly", got)
	}
	if got := h.Mean(); got != 200*time.Nanosecond {
		t.Fatalf("Mean() = %v, want 200ns exactly", got)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(0)              // clamps to 1ns in both the bucket and the sum
	h.Record(10 * time.Hour) // clamps to the top bucket, exact in the sum
	if h.Total() != 2 {
		t.Fatal("clamped samples lost")
	}
	if h.Sum() != 10*time.Hour+time.Nanosecond {
		t.Fatalf("Sum() = %v", h.Sum())
	}
}

// TestHistogramNonPositiveClampConsistent pins the Record contract for
// non-positive samples: each is clamped to 1ns in BOTH the bucket and
// the sum, so Total, Sum and Mean agree. Before this was pinned,
// negative durations (a clock stepping backwards mid-wait) were counted
// in bucket 0 but excluded from the sum, silently dragging Mean below
// every recorded sample.
func TestHistogramNonPositiveClampConsistent(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Nanosecond)
	h.Record(0)
	if got := h.Total(); got != 2 {
		t.Fatalf("Total() = %d, want 2", got)
	}
	if got := h.Sum(); got != 2*time.Nanosecond {
		t.Fatalf("Sum() = %v, want 2ns (each clamped sample contributes 1ns)", got)
	}
	if got := h.Mean(); got != time.Nanosecond {
		t.Fatalf("Mean() = %v, want 1ns", got)
	}
	if got := h.Snapshot().Counts[0]; got != 2 {
		t.Fatalf("bucket 0 count = %d, want 2", got)
	}
}

func TestSnapshotSubAndJSON(t *testing.T) {
	var h Histogram
	h.Record(time.Microsecond)
	before := h.Snapshot()
	h.Record(time.Microsecond)
	h.Record(2 * time.Microsecond)
	delta := h.Snapshot().Sub(before)
	if delta.Total() != 2 {
		t.Fatalf("delta Total() = %d, want 2", delta.Total())
	}
	if delta.Sum() != 3*time.Microsecond {
		t.Fatalf("delta Sum() = %v, want 3µs", delta.Sum())
	}

	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 3 || back.SumNanos != h.Snapshot().SumNanos {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Total(); got != goroutines*per {
		t.Fatalf("Total() = %d, want %d", got, goroutines*per)
	}
}

func TestPublishIdempotent(t *testing.T) {
	calls := 0
	Publish("citrusstat_test_var", func() any { calls++; return map[string]int{"x": 1} })
	Publish("citrusstat_test_var", func() any { t.Error("second Publish won"); return nil })
	v := expvar.Get("citrusstat_test_var")
	if v == nil {
		t.Fatal("var not published")
	}
	if got := v.String(); got != `{"x":1}` {
		t.Fatalf("published value = %s", got)
	}
	if calls != 1 {
		t.Fatalf("first function called %d times", calls)
	}
}
