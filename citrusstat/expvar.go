package citrusstat

import "expvar"

// Publish registers fn under name in the process-wide expvar registry,
// so the stats it returns appear on the standard /debug/vars endpoint.
// The value is re-evaluated on every scrape; return plain data (e.g. a
// stats snapshot struct or map) and it is rendered as JSON.
//
// Unlike expvar.Publish, Publish is idempotent: republishing an
// already-registered name is a no-op instead of a panic, so servers can
// be constructed repeatedly in tests.
func Publish(name string, fn func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(fn))
}
