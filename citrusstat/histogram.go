// Package citrusstat holds the shared measurement primitives of the
// Citrus reproduction: a lock-free power-of-two latency histogram used
// both by the benchmark harness (per-operation latency) and by the
// library's runtime observability layer (grace-period waits, see
// rcu.Stats and the Stats methods on citrus.Tree), plus a small expvar
// publishing helper for services that expose those stats over HTTP.
//
// Everything here is safe for concurrent use and deliberately cheap to
// record into: one uncontended-atomic add per sample, no locks, no
// allocation.
package citrusstat

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two histogram buckets; bucket i
// counts samples in [2^i, 2^(i+1)) nanoseconds, which spans 1ns to
// ~4.6h — more than any dictionary operation or grace period.
const NumBuckets = 44

// Histogram is a lock-free power-of-two duration histogram. Record may
// be called from any number of goroutines; the zero value is ready to
// use. Alongside the bucketed counts it keeps an exact nanosecond sum,
// so Mean is not subject to bucket-resolution error.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64 // exact nanoseconds across all samples
}

// Record adds one sample. Non-positive durations — a clock that went
// backwards, or a wait shorter than the clock's resolution — are clamped
// to 1ns for both the sum and the bucket, so Total, Sum and Mean stay
// mutually consistent (a clamped sample contributes exactly 1ns, never a
// counted-but-sumless entry that would skew Mean low).
func (h *Histogram) Record(d time.Duration) {
	n := d.Nanoseconds()
	if n < 1 {
		n = 1
	}
	h.sum.Add(n)
	b := 63 - bits.LeadingZeros64(uint64(n))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	h.counts[b].Add(1)
}

// Snapshot returns a consistent-enough point-in-time copy: each bucket
// is loaded atomically, so totals are exact for any quiescent moment and
// at most one in-flight sample off per recording goroutine otherwise.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNanos = h.sum.Load()
	return s
}

// Total reports the number of recorded samples.
func (h *Histogram) Total() int64 { return h.Snapshot().Total() }

// Sum reports the exact cumulative duration of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean reports the exact average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration { return h.Snapshot().Mean() }

// Percentile estimates the p-th percentile (p in [0, 100]); see
// Snapshot.Percentile for the estimation contract.
func (h *Histogram) Percentile(p float64) time.Duration { return h.Snapshot().Percentile(p) }

// Summary formats the standard percentiles.
func (h *Histogram) Summary() string { return h.Snapshot().Summary() }

// A Snapshot is a plain-value copy of a Histogram, safe to retain,
// compare, serialize (it marshals to JSON as counts plus an exact
// nanosecond sum), and query without further synchronization.
type Snapshot struct {
	Counts   [NumBuckets]int64 `json:"counts"`
	SumNanos int64             `json:"sum_nanos"`
}

// Total reports the number of samples in the snapshot.
func (s Snapshot) Total() int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Sum reports the exact cumulative duration of the snapshot's samples.
func (s Snapshot) Sum() time.Duration { return time.Duration(s.SumNanos) }

// Mean reports the exact average sample, or 0 with no samples.
func (s Snapshot) Mean() time.Duration {
	n := s.Total()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / n)
}

// Percentile estimates the p-th percentile (p in [0, 100]; values
// outside clamp). The winning log2 bucket is found by cumulative rank
// and the return value interpolates linearly within that bucket's
// [2^i, 2^(i+1)) span, assuming samples spread uniformly inside it —
// so the estimate moves smoothly with p instead of jumping between
// power-of-two ceilings. The result is always within the winning
// bucket: no lower than its lower edge, no higher than its upper edge
// (p=100 returns the highest occupied bucket's upper edge, the old
// ceiling behavior, so it stays a true upper bound). Percentile is
// monotonically non-decreasing in p.
func (s Snapshot) Percentile(p float64) time.Duration {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	// want is the fractional rank of the requested percentile, clamped
	// to [1, total] so p=0 lands at the first sample and p=100 at the
	// last.
	want := p / 100 * float64(total)
	if want < 1 {
		want = 1
	}
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= want {
			lo := float64(uint64(1) << uint(i))
			hi := float64(uint64(1) << uint(i+1))
			frac := (want - float64(seen)) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		seen += c
	}
	return time.Duration(uint64(1) << NumBuckets)
}

// Summary formats the standard percentiles.
func (s Snapshot) Summary() string {
	if s.Total() == 0 {
		return "no latency samples"
	}
	return fmt.Sprintf("p50≈%v p99≈%v p99.9≈%v (n=%d sampled)",
		s.Percentile(50), s.Percentile(99), s.Percentile(99.9), s.Total())
}

// Merge folds other into s bucket-wise: counts add per bucket and the
// exact sums add. Both snapshots live on the same log2 bucket lattice,
// so the merge is exact — the result is indistinguishable from one
// histogram that recorded both sample streams. This is the fold behind
// forest-wide stats (citrus.ForestStats) and any cross-shard metric
// aggregation.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.SumNanos += other.SumNanos
}

// Sub returns the per-bucket difference s − prev: the samples recorded
// between the two snapshots. Useful for interval-rate reporting against
// a monotonically growing histogram.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	d.SumNanos = s.SumNanos - prev.SumNanos
	return d
}
